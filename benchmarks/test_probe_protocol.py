"""Bench X3: the §4 escalating probe protocol and bonnie vetting loop."""

from conftest import show, single_shot

from repro.cloud import Cloud, acquire_good_instance
from repro.cloud.instance import HeterogeneityModel
from repro.experiments import exp_side
from repro.report import ComparisonTable
from repro.units import MB


def test_probe_protocol_escalates(benchmark):
    fig, out = single_shot(benchmark, exp_side.probe_protocol_trace)
    show(fig)
    table = ComparisonTable()
    table.add("X3", "small probes discarded as unstable", "CV too large",
              f"first-round worst CV = {out['worst_cv'][0]:.2f}",
              out["worst_cv"][0] > 0.25)
    table.add("X3", "volume escalates geometrically", "V1 = k·V0",
              f"volumes {out['volumes']}",
              len(out["volumes"]) >= 2
              and out["volumes"][1] == out["volumes"][0] * 5)
    table.add("X3", "protocol converges to a stable probe set", "stable",
              str(out["stable"]), out["stable"])
    final_cv = out["worst_cv"][-1]
    table.add("X3", "final probe set is stable", "CV small",
              f"final worst CV = {final_cv:.2f}", final_cv <= 0.25)
    print(table.render())
    assert table.all_agree


def test_bonnie_acquisition_loop(benchmark):
    """§4: 'We repeat this procedure until we acquire an instance that
    performs well' — on a degraded cloud the loop visibly rejects."""

    def acquire():
        hmodel = HeterogeneityModel(p_slow=0.5, p_very_slow=0.2)
        cloud = Cloud(seed=71, io_heterogeneity=hmodel)
        inst, attempts = acquire_good_instance(cloud, max_attempts=60)
        return cloud, inst, attempts

    cloud, inst, attempts = benchmark.pedantic(acquire, rounds=1, iterations=1)
    print(f"\naccepted {inst.instance_id} after {attempts} attempt(s); "
          f"io_factor = {inst.io_factor:.2f}")
    table = ComparisonTable()
    table.add("X3", "vetting rejects poor instances", "repeat until good",
              f"{attempts} attempts", attempts > 1)
    table.add("X3", "accepted instance clears 60 MB/s", "> 60 MB/s",
              f"{inst.itype.base_disk_bandwidth * inst.io_factor / MB:.0f} MB/s",
              inst.itype.base_disk_bandwidth * inst.io_factor >= 60 * MB)
    table.add("X3", "rejected instances still billed (partial hour)",
              "cost of vetting", f"{len(cloud.ledger.records)} records",
              len(cloud.ledger.records) == attempts - 1)
    print(table.render())
    assert table.all_agree
