"""Shared benchmark fixtures.

Each benchmark regenerates one paper figure/table: it prints the ASCII
rendering of the regenerated figure, appends paper-vs-measured comparison
rows, and asserts the *shape* claims (who wins, by what factor).  Expensive
testbeds are session-scoped so the grep and POS figure groups share their
probe infrastructure, like the paper's own measurement campaigns did.
"""

from __future__ import annotations

import pytest

from repro.experiments import exp_grep, exp_pos


def single_shot(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def grep_testbed():
    """Vetted instance + EBS volume + ~9 GB HTML catalogue (shared)."""
    return exp_grep.make_testbed()


@pytest.fixture(scope="session")
def pos_testbed():
    """Vetted instance + full-scale Text_400K catalogue (shared)."""
    return exp_pos.make_testbed()


def show(fig) -> None:
    from repro.report.figures import render_ascii

    print()
    print(render_ascii(fig))
