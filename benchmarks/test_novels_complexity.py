"""Bench X1: Dubliners vs Agnes Grey — equal words, ~2x POS time (§5.2)."""

from conftest import show, single_shot

from repro.experiments import exp_pos
from repro.report import ComparisonTable

PAPER_RATIO = (6 * 60 + 32) / (3 * 60 + 48)  # 6m32s / 3m48s = 1.72


def test_novels_complexity(benchmark):
    fig, out = single_shot(benchmark, exp_pos.novels)
    show(fig)
    table = ComparisonTable()
    table.add("X1", "word counts nearly equal", "gap < 300 words",
              f"gap = {out['word_gap']}", out["word_gap"] < 300)
    table.add("X1", "word counts", "67,496 / 67,755",
              f"{out['words']['dubliners']} / {out['words']['agnes_grey']}",
              out["words"]["dubliners"] == 67_496
              and out["words"]["agnes_grey"] == 67_755)
    table.add("X1", "complex prose takes ~2x as long", f"{PAPER_RATIO:.2f}x",
              f"{out['ratio']:.2f}x", 1.35 < out["ratio"] < 2.2)
    print(table.render())
    assert table.all_agree
