"""Benches for the §7 future-work extensions implemented beyond the core.

Not paper figures — these quantify the improvements the paper *proposes*:
weighted curve fitting, per-quality predictors, workflow subdeadlines, and
upload-site staging.
"""

import numpy as np
from conftest import single_shot

from repro.apps import (
    ExtractCostProfile,
    ExtractorApplication,
    GrepApplication,
    GrepCostProfile,
    PosCostProfile,
    PosTaggerApplication,
)
from repro.cloud import Cloud, UploadSite, Workload
from repro.cloud.instance import HeterogeneityModel
from repro.core import TextWorkflow, WorkflowStage, assign_subdeadlines, execute_workflow
from repro.corpus import html_18mil_like
from repro.perfmodel import QualityTracker, volume_weighted_fit
from repro.perfmodel.regression import fit_affine
from repro.report import ComparisonTable
from repro.runner import execute_quality_aware
from repro.units import GB, HOUR, MB


def test_extension_workflow_subdeadlines(benchmark):
    """§7: workflows scheduled with full-hour subdeadlines meet the global
    deadline without mid-hour instance waste."""

    def run():
        def affine(a, b):
            x = np.array([1e5, 1e6, 1e7])
            return fit_affine(x, a + b * x)

        wf = TextWorkflow()
        wf.add_stage(WorkflowStage(
            "filter", Workload("grep", GrepApplication(), GrepCostProfile()),
            affine(0.2, 1.3e-8), output_ratio=0.4))
        wf.add_stage(WorkflowStage(
            "extract", Workload("extract", ExtractorApplication(), ExtractCostProfile()),
            affine(0.3, 3e-8), output_ratio=0.95, strips_markup=True),
            after=["filter"])
        wf.add_stage(WorkflowStage(
            "tag", Workload("postag", PosTaggerApplication(), PosCostProfile()),
            affine(3.0, 0.9e-4)), after=["extract"])
        cat = html_18mil_like(scale=5e-4)
        subs = assign_subdeadlines(wf, cat.total_size, 4 * HOUR)
        report = execute_workflow(Cloud(seed=22), wf, cat, 4 * HOUR)
        return subs, report

    subs, report = single_shot(benchmark, run)
    table = ComparisonTable()
    table.add("W1", "subdeadlines are hour-aligned", "full-hour groups",
              f"{sorted(s / HOUR for s in subs.values())} h",
              all(s % HOUR == 0 for s in subs.values()))
    table.add("W1", "subdeadline budget equals the user deadline", "4 h",
              f"{sum(subs.values()) / HOUR:.0f} h",
              sum(subs.values()) == 4 * HOUR)
    table.add("W1", "workflow meets the global deadline", "met",
              f"makespan {report.makespan:.0f}s", report.met_deadline)
    print("\n" + table.render())
    assert table.all_agree


def test_extension_quality_aware_shares(benchmark):
    """§7: per-quality predictors narrow the finish-time spread on a
    heterogeneous fleet."""

    def run():
        tracker = QualityTracker()
        for v in (1e8, 5e8, 1e9):
            tracker.record("fast", v, v * 1.33e-8)
            tracker.record("ok", v, v * 1.33e-8 / 0.75)
            tracker.record("slow", v, v * 1.33e-8 / 0.45)
        hetero = HeterogeneityModel(p_slow=0.5, p_very_slow=0.0,
                                    slow_range=(0.45, 0.6))
        cloud = Cloud(seed=33, io_heterogeneity=hetero)
        cat = html_18mil_like(scale=1e-3)
        wl = Workload("grep", GrepApplication(), GrepCostProfile())
        report, labels = execute_quality_aware(
            cloud, wl, cat, deadline=120.0, n_instances=6, tracker=tracker)
        return report, labels

    report, labels = single_shot(benchmark, run)
    durations = [r.duration for r in report.runs if r.volume > 0]
    spread = (max(durations) - min(durations)) / float(np.mean(durations))
    table = ComparisonTable()
    table.add("W2", "fleet mixes quality classes", "heterogeneous",
              f"labels {sorted(set(labels))}", len(set(labels)) >= 2)
    table.add("W2", "quality-aware shares even out finish times",
              "narrow spread", f"{spread:.1%} spread", spread < 0.5)
    print("\n" + table.render())
    assert table.all_agree


def test_extension_staging_constant_time(benchmark):
    """§5 staging assumption, made checkable: beyond the upload site's
    saturation point, stage-in time is fleet-size independent."""

    def run():
        site = UploadSite(egress_bandwidth=30 * MB, per_instance_cap=20 * MB)
        return {n: site.stage_in_time(10 * GB, n) for n in (1, 2, 4, 16, 64)}

    times = single_shot(benchmark, run)
    print(f"\nfleet size -> stage-in seconds: "
          f"{ {n: round(t, 1) for n, t in times.items()} }")
    assert times[1] > times[2]
    assert times[2] == times[4] == times[16] == times[64]


def test_extension_weighted_fit(benchmark):
    """§7: weighted fitting pins the large-volume range.

    Outcome worth recording: the weighted fit reliably tracks the largest
    measured volume more closely (its stated goal), but for *affine*
    runtime models the extrapolation gain over plain OLS is marginal —
    OLS slopes are already dominated by the large-volume points.  The §7
    proposal matters for the noisier curved families, not the linear one
    the paper ends up using.
    """

    def run():
        top_wins = 0
        extrap_w = []
        extrap_u = []
        for seed in range(10):
            rng = np.random.default_rng(seed)
            x = np.logspace(4, 8, 30)
            rel = np.linspace(1.2, 0.01, 30)
            y = np.maximum(
                (2.0 + 1e-4 * x) * (1 + rng.normal(0, 1, 30) * rel / 2), 1e-3)
            fit_w = volume_weighted_fit(x, y, power=3.0)
            fit_u = fit_affine(x, y)
            res_w = abs(float(y[-1]) - fit_w.predict(float(x[-1])))
            res_u = abs(float(y[-1]) - fit_u.predict(float(x[-1])))
            top_wins += res_w <= res_u
            truth = 2.0 + 1e-4 * 1e9
            extrap_w.append(abs(fit_w.predict(1e9) - truth) / truth)
            extrap_u.append(abs(fit_u.predict(1e9) - truth) / truth)
        return top_wins, float(np.mean(extrap_w)), float(np.mean(extrap_u))

    top_wins, err_w, err_u = single_shot(benchmark, run)
    print(f"\nweighted fit closer at the top volume in {top_wins}/10 trials; "
          f"mean extrapolation error {err_w:.1%} (weighted) vs {err_u:.1%} "
          f"(unweighted) — marginal for affine models, as recorded in "
          f"EXPERIMENTS.md")
    assert top_wins >= 9
    assert err_w < 3 * max(err_u, 0.005)  # no blow-up; gains are marginal
