"""Bench F7: POS tagging on a 1000 kB probe — original segmentation wins
(Fig. 7)."""

from conftest import show, single_shot

from repro.experiments import exp_pos
from repro.report import ComparisonTable
from repro.units import KB


def test_fig7_original_segmentation_best(benchmark, pos_testbed):
    fig, out = single_shot(benchmark, exp_pos.fig7, pos_testbed)
    show(fig)
    means = out["means"]
    table = ComparisonTable()
    table.add("F7", "original segmentation fares best", "orig minimal",
              f"orig {means['orig']:.1f}s vs best merged "
              f"{min(v for k, v in means.items() if k != 'orig'):.1f}s",
              means["orig"] <= min(v for k, v in means.items() if k != "orig") * 1.02)
    table.add("F7", "probe composition (orig vs 1 kB units)", "2183 vs 1000 files",
              f"{out['n_orig_files']} vs {out['n_1kb_units']}",
              out["n_orig_files"] > 1.8 * out["n_1kb_units"])
    table.add("F7", "large unit files degrade pronouncedly", "pronounced",
              f"{out['degradation_at_1000kb']:.2f}x at 1000 kB",
              out["degradation_at_1000kb"] > 1.3)
    # degradation grows monotonically with unit size across decades
    mono = means[1 * KB] < means[10 * KB] < means[100 * KB] < means[1000 * KB]
    table.add("F7", "degradation grows with unit size", "monotone", str(mono), mono)
    print(table.render())
    assert table.all_agree
