"""Bench F8 + E3/E4: POS scheduling for D = 1 h — first-fit vs uniform vs
sample-refit vs adjusted deadline (Fig. 8(a)–(d), Eqs. (3)–(4))."""

from conftest import show, single_shot

from repro.experiments import exp_pos
from repro.report import ComparisonTable

PAPER_EQ3_SLOPE = 0.865e-4
PAPER_EQ4_SLOPE = 0.725482e-4


def test_fig8_one_hour_scheduling(benchmark, pos_testbed):
    fig, out = single_shot(benchmark, exp_pos.fig8, pos_testbed)
    show(fig)
    v = out["variants"]
    a8, b8, c8, d8 = (v["8a_first_fit_model3"], v["8b_uniform_model3"],
                      v["8c_uniform_model4"], v["8d_adjusted_model4"])
    table = ComparisonTable()
    table.add("E3", "Eq.(3) slope", f"{PAPER_EQ3_SLOPE:.3e}",
              f"{out['eq3']['b']:.3e}",
              abs(out["eq3"]["b"] - PAPER_EQ3_SLOPE) / PAPER_EQ3_SLOPE < 0.45)
    table.add("E3", "instances for D=1h from model (3)", "27",
              str(a8["instances"]), 22 <= a8["instances"] <= 33)
    table.add("E4", "refit slope drops below Eq.(3)", "0.726 < 0.865 (e-4)",
              f"{out['eq4']['b']:.3e} < {out['eq3']['b']:.3e}",
              out["eq4"]["b"] < out["eq3"]["b"])
    table.add("E4", "model (4) prescribes fewer instances", "22 < 27",
              f"{c8['instances']} < {a8['instances']}",
              c8["instances"] < a8["instances"])
    table.add("F8b", "uniform bins: same instances, lower worst bin",
              "same cost, meets deadline",
              f"max predicted {max(b8['plan'].predicted_times):.0f}s vs "
              f"{max(a8['plan'].predicted_times):.0f}s (first-fit)",
              b8["instances"] == a8["instances"]
              and max(b8["plan"].predicted_times) < max(a8["plan"].predicted_times))
    table.add("F8b", "uniform misses no more than first-fit", "fewer misses",
              f"{b8['missed']} <= {a8['missed']}", b8["missed"] <= a8["missed"])
    table.add("F8d", "adjusted deadline (10% miss odds)", "3124 s",
              f"{out['adjusted_deadline']:.0f} s",
              2800 < out["adjusted_deadline"] < 3400)
    table.add("F8d", "adjustment reduces misses vs model-(4) plan",
              "fewer misses", f"{d8['missed']} <= {c8['missed']}",
              d8["missed"] <= c8["missed"])
    table.add("F8d", "adjustment costs extra instance-hours", "30 vs 27",
              f"{d8['instance_hours']} >= {c8['instance_hours']}",
              d8["instance_hours"] >= c8["instance_hours"])
    print(table.render())
    assert table.all_agree
