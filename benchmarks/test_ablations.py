"""Ablation benches for the design choices DESIGN.md calls out."""

import numpy as np
import pytest
from conftest import single_shot

from repro.apps import GrepCostProfile, PosCostProfile, PosTaggerApplication, UnitMeta
from repro.apps.base import as_unit_meta
from repro.cloud import Cloud, Workload
from repro.core import StaticProvisioner, reshape
from repro.core.deadline import adjusted_deadline, adjustment_factor
from repro.corpus import text_400k_like
from repro.packing import first_fit, first_fit_decreasing
from repro.perfmodel.measurement import Measurement, ProbeSetResult
from repro.perfmodel.regression import fit_affine
from repro.perfmodel.selection import preferred_unit_size
from repro.report import ComparisonTable
from repro.runner import execute_plan
from repro.units import KB, MB
from repro.vfs import TextStats


def eq3_model():
    x = np.array([1e5, 1e6, 5e6])
    return fit_affine(x, 0.327 + 0.865e-4 * x)


def _bin_time(profile: PosCostProfile, bin_, by_path) -> float:
    metas = [as_unit_meta(by_path[it.key]) for it in bin_.items]
    return profile.breakdown(metas).total


def test_ablation_first_fit_order_vs_sorted(benchmark):
    """§5.2: sorted-descending first-fit gives fuller bins but front-loads
    large (memory-penalized) files — the paper deliberately keeps original
    order for the POS workload."""

    def run():
        cat = text_400k_like(scale=0.05)
        by_path = {f.path: f for f in cat}
        capacity = 2 * MB
        ff = first_fit(cat.items(), capacity)
        ffd = first_fit_decreasing(cat.items(), capacity)
        profile = PosCostProfile()
        t_ff = [_bin_time(profile, b, by_path) for b in ff]
        t_ffd = [_bin_time(profile, b, by_path) for b in ffd]
        return ff, ffd, t_ff, t_ffd

    ff, ffd, t_ff, t_ffd = single_shot(benchmark, run)
    table = ComparisonTable()
    table.add("A1", "FFD packs at least as tightly", "fewer or equal bins",
              f"{len(ffd)} vs {len(ff)}", len(ffd) <= len(ff))
    table.add("A1", "FFD front-loads cost into its worst bin", "higher max bin time",
              f"max {max(t_ffd):.1f}s vs {max(t_ff):.1f}s",
              max(t_ffd) >= max(t_ff))
    spread_ff = np.std(t_ff) / np.mean(t_ff)
    spread_ffd = np.std(t_ffd) / np.mean(t_ffd)
    table.add("A1", "FFD bins are more uneven in time", "larger spread",
              f"CV {spread_ffd:.2f} vs {spread_ff:.2f}", spread_ffd > spread_ff)
    print("\n" + table.render())
    assert table.all_agree


def test_ablation_plateau_tolerance(benchmark):
    """Selection sensitivity: a wider plateau tolerance admits smaller unit
    sizes (more scheduling freedom at equal measured speed)."""

    def run():
        variants = {
            "orig": Measurement(values=(480.0, 482.0)),
            1 * MB: Measurement(values=(93.0, 93.5)),
            10 * MB: Measurement(values=(77.0, 77.4)),
            100 * MB: Measurement(values=(74.5, 74.8)),
            500 * MB: Measurement(values=(74.0, 74.2)),
        }
        ps = ProbeSetResult(volume=5_000_000_000, variants=variants)
        picks = {}
        for tol in (0.0, 0.01, 0.05, 0.10, 0.30):
            picks[tol] = preferred_unit_size([ps], plateau_tolerance=tol).label
        return picks

    picks = single_shot(benchmark, run)
    print(f"\nplateau tolerance -> chosen unit: {picks}")
    # tightest tolerance picks the true minimum; wider admits smaller units
    assert picks[0.0] == 500 * MB
    assert picks[0.01] == 100 * MB
    assert picks[0.05] == 10 * MB
    assert picks[0.30] == 1 * MB
    numeric = [picks[t] for t in sorted(picks) if isinstance(picks[t], int)]
    assert numeric == sorted(numeric, reverse=True)


def test_ablation_heterogeneity_vs_prediction_error(benchmark):
    """The wider the fleet's hidden spread, the worse the clean-instance
    model predicts the makespan — the mechanism behind Fig. 6's miss."""

    def run():
        from repro.cloud.instance import HeterogeneityModel

        model = eq3_model()
        cat = text_400k_like(scale=0.02)
        plan = StaticProvisioner(model).plan(list(cat), 120.0, strategy="uniform")
        wl = Workload("postag", PosTaggerApplication(), PosCostProfile())
        errors = {}
        for p_slow in (0.0, 0.2, 0.5):
            h = HeterogeneityModel(p_slow=p_slow, p_very_slow=p_slow / 2,
                                   slow_range=(0.5, 0.8))
            reports = []
            for seed in range(5):
                cloud = Cloud(seed=1000 + seed, heterogeneity=h)
                reports.append(execute_plan(cloud, wl, plan))
            predicted = plan.max_predicted_time()
            errors[p_slow] = float(np.mean(
                [r.makespan / predicted for r in reports]
            ))
        return errors

    errors = single_shot(benchmark, run)
    print(f"\np_slow -> makespan/predicted: {errors}")
    assert errors[0.0] < errors[0.2] < errors[0.5]


def test_ablation_miss_probability_sweep(benchmark):
    """Tighter miss targets shrink the planning deadline and raise cost."""

    def run():
        rng = np.random.default_rng(4)
        x = np.linspace(1e5, 1e7, 25)
        y = (0.3 + 0.9e-4 * x) * (1 + rng.normal(0, 0.12, x.size))
        model = fit_affine(x, y)
        out = {}
        for p in (0.30, 0.20, 0.10, 0.05):
            a = adjustment_factor(model, p)
            d1 = adjusted_deadline(3600.0, a)
            prov = StaticProvisioner(model)
            out[p] = (d1, prov.instances_for(10**9, d1))
        return out

    out = single_shot(benchmark, run)
    print(f"\nmiss probability -> (planning deadline, instances): {out}")
    deadlines = [out[p][0] for p in (0.30, 0.20, 0.10, 0.05)]
    instances = [out[p][1] for p in (0.30, 0.20, 0.10, 0.05)]
    assert deadlines == sorted(deadlines, reverse=True)
    assert instances == sorted(instances)


def test_ablation_seed_robustness(benchmark):
    """The headline shapes are not one-seed flukes: the Fig. 4 plateau and
    the reshaping win reproduce across independent cloud/testbed seeds."""

    def run():
        from repro.experiments import exp_grep

        results = []
        for seed in (7, 19, 31):
            tb = exp_grep.make_testbed(seed=seed, scale=3e-3, repeats=3)
            _, out = exp_grep.fig4(tb)
            results.append((seed, out["orig_over_plateau"], out["plateau_spread"]))
        return results

    results = single_shot(benchmark, run)
    print("\nseed -> (orig/plateau, plateau spread):")
    for seed, ratio, spread in results:
        print(f"  {seed}: {ratio:.1f}x, {spread:.1%}")
    for _, ratio, spread in results:
        assert ratio > 3.0        # reshaping always wins several-fold
        assert spread < 0.15      # the plateau is always flat-ish


def test_ablation_per_file_overhead_crossover(benchmark):
    """The plateau onset (where per-file overhead falls below 5% of
    streaming time) scales linearly with the per-file penalty — the knob
    that decides how aggressively data must be reshaped."""

    def run():
        crossovers = {}
        for overhead in (0.001, 0.004, 0.016):
            profile = GrepCostProfile(per_file_overhead=overhead)
            total = 5_000_000_000
            unit = 1 * MB
            while unit < total:
                n = total // unit
                meta = [UnitMeta(size=unit, stats=TextStats())] * n
                t = profile.breakdown(meta)
                overhead_part = n * overhead
                if overhead_part < 0.05 * (t.total - overhead_part):
                    break
                unit *= 2
            crossovers[overhead] = unit
        return crossovers

    crossovers = single_shot(benchmark, run)
    print(f"\nper-file overhead -> plateau onset unit size: {crossovers}")
    vals = [crossovers[o] for o in (0.001, 0.004, 0.016)]
    assert vals == sorted(vals)
    assert vals[0] < vals[2]
