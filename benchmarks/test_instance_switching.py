"""Bench X2: the §3.1 slow-instance switching argument, analytic + simulated."""

from conftest import show, single_shot

from repro.apps import PosCostProfile, PosTaggerApplication
from repro.cloud import Cloud, Workload
from repro.core import StaticProvisioner, reshape
from repro.corpus import text_400k_like
from repro.experiments import exp_side
from repro.perfmodel.regression import fit_affine
from repro.report import ComparisonTable
from repro.runner import DynamicPolicy, execute_plan, execute_with_monitoring


def test_switching_arithmetic(benchmark):
    fig, out = single_shot(benchmark, exp_side.instance_switching)
    show(fig)
    table = ComparisonTable()
    table.add("X2", "keep slow instance: GB in next hour", "~210 GB",
              f"{out['keep_gb']:.0f} GB", 190 < out["keep_gb"] < 230)
    table.add("X2", "swap to fast instance: extra GB", "~57 GB",
              f"{out['extra_if_fast_gb']:.0f} GB", 30 < out["extra_if_fast_gb"] < 90)
    table.add("X2", "swap to another slow one: GB lost", "~10 GB",
              f"{out['lost_if_slow_gb']:.1f} GB", 5 < out["lost_if_slow_gb"] < 15)
    print(table.render())
    assert table.all_agree


def test_switching_simulated(benchmark):
    """The same trade-off enacted by the §7 dynamic rescheduler."""
    import numpy as np

    class Scripted:
        def __init__(self, n):
            self.remaining = n

        def draw_factor(self, rng):
            if self.remaining > 0:
                self.remaining -= 1
                return 0.35
            return 1.0

    def run():
        x = np.array([1e5, 1e6, 5e6])
        model = fit_affine(x, 0.327 + 0.865e-4 * x)
        cat = text_400k_like(scale=3e-2)
        plan = StaticProvisioner(model).plan(
            list(reshape(cat, None).units), 300.0, strategy="uniform")
        wl = Workload("postag", PosTaggerApplication(), PosCostProfile())
        n = plan.n_instances
        static = execute_plan(Cloud(seed=3, heterogeneity=Scripted(2 * n)), wl, plan)
        dynamic, events = execute_with_monitoring(
            Cloud(seed=3, heterogeneity=Scripted(2 * n)), wl, plan,
            policy=DynamicPolicy(slow_threshold=0.7),
        )
        return static, dynamic, events

    static, dynamic, events = single_shot(benchmark, run)
    print(f"\nstatic makespan {static.makespan:.0f}s vs dynamic "
          f"{dynamic.makespan:.0f}s after {len(events)} replacement(s)")
    assert len(events) >= 1
    assert dynamic.makespan < static.makespan
