"""Bench X4/X5: output-retrieval speedup (§1) and the spot-market extension
(§1.1)."""

import pytest
from conftest import show, single_shot

pytestmark = pytest.mark.smoke  # fast enough for the CI benchmark smoke job

from repro.experiments import exp_side
from repro.report import ComparisonTable


def test_output_retrieval_speedup(benchmark):
    """§1: merging input also merges output, making result retrieval faster."""
    fig, out = single_shot(benchmark, exp_side.output_retrieval)
    show(fig)
    table = ComparisonTable()
    table.add("X4", "merged output retrieves faster", "shorter retrieval time",
              f"{out['speedup']:.1f}x", out["speedup"] > 1.5)
    print(table.render())
    assert table.all_agree


def test_spot_tradeoff(benchmark):
    """§1.1: spot is cheaper but unsuitable under deadlines."""
    fig, out = single_shot(benchmark, exp_side.spot_tradeoff)
    show(fig)
    table = ComparisonTable()
    done = [r for r in out["bids"] if r[1] is not None]
    table.add("X5", "some bid completes the workload", "resume-capable app finishes",
              f"{len(done)}/{len(out['bids'])} bids complete", len(done) >= 1)
    if done:
        table.add("X5", "spot completion is cheaper than on-demand",
                  "cheaper", f"${out['cheapest_done']:.2f} vs ${out['on_demand_cost']:.2f}",
                  out["cheapest_done"] < out["on_demand_cost"])
        slowest = max(r[1] for r in done)
        table.add("X5", "but takes at least as long as dedicated capacity",
                  "time/cost trade-off", f"{slowest} h for 20 h of work",
                  slowest >= 20)
    print(table.render())
    assert table.all_agree
