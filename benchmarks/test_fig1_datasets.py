"""Bench F1a/F1b: regenerate the Fig. 1 data-set size histograms."""

import pytest
from conftest import show, single_shot

pytestmark = pytest.mark.smoke  # fast enough for the CI benchmark smoke job

from repro.experiments import exp_fig1
from repro.report import ComparisonTable


def test_fig1a_html_dataset(benchmark):
    fig, stats = single_shot(benchmark, exp_fig1.fig1a)
    show(fig)
    table = ComparisonTable()
    table.add("F1a", "majority of files under 50 kB", ">50%",
              f"{stats['frac_under_50kb']:.0%}", stats["frac_under_50kb"] > 0.5)
    table.add("F1a", "largest file", "43 MB", f"{stats['max_mb']:.0f} MB",
              abs(stats["max_mb"] - 43.0) < 0.5)
    table.add("F1a", "long tail (mean >> median)", "long tail",
              f"mean/median = {stats['tail_ratio']:.2f}", stats["tail_ratio"] > 1.3)
    print(table.render())
    assert table.all_agree


def test_fig1b_text_dataset(benchmark):
    fig, stats = single_shot(benchmark, exp_fig1.fig1b)
    show(fig)
    table = ComparisonTable()
    table.add("F1b", "files under 1 kB", ">40%",
              f"{stats['frac_under_1kb']:.0%}", stats["frac_under_1kb"] > 0.40)
    table.add("F1b", "majority under 5 kB", "majority",
              f"{stats['frac_under_5kb']:.0%}", stats["frac_under_5kb"] > 0.5)
    table.add("F1b", "largest file", "705 kB", f"{stats['max_kb']:.0f} kB",
              abs(stats["max_kb"] - 705.0) < 1.0)
    table.add("F1b", "total volume at full 400k scale", "~1 GB",
              f"{stats['total_gb_at_full_scale']:.2f} GB",
              0.7 < stats["total_gb_at_full_scale"] < 1.4)
    print(table.render())
    assert table.all_agree
