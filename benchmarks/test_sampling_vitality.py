"""Bench X7: when is random sampling vital? (§5.2, closing paragraph)

"For our news data set, we do not see a dramatic improvement in the
predictive power of our model derived by using random sampling.  This can
be expected of corpora that are uniform in terms of language complexity …
For other corpora, as seen in the experiment above, random sampling can be
vital to help capture the variation in text complexity."
"""

from conftest import show, single_shot

from repro.experiments import exp_side
from repro.report import ComparisonTable


def test_sampling_vitality(benchmark):
    fig, out = single_shot(benchmark, exp_side.sampling_vitality)
    show(fig)
    uni = out["uniform_news"]
    clu = out["clustered_domains"]
    table = ComparisonTable()
    table.add("X7", "uniform corpus: head-probe model already good",
              "no dramatic improvement",
              f"error {uni['head_error']:.1%} -> {uni['refit_error']:.1%}",
              uni["head_error"] < 0.12)
    table.add("X7", "clustered corpus: head-probe model badly biased",
              "sampling vital",
              f"error {clu['head_error']:.1%}", clu["head_error"] > 0.15)
    table.add("X7", "sampling rescues the clustered corpus",
              "captures complexity variation",
              f"error {clu['head_error']:.1%} -> {clu['refit_error']:.1%}",
              clu["refit_error"] < clu["head_error"] / 2)
    table.add("X7", "sampling matters far more for the clustered corpus",
              "vital vs marginal",
              f"improvement {clu['improvement']:.1%} vs {uni['improvement']:.1%}",
              clu["improvement"] > 3 * abs(uni["improvement"]))
    print(table.render())
    assert table.all_agree
