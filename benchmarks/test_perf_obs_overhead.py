"""Perf guard: disabled observability must be (nearly) free.

Every instrumented call site pays one ``get_obs()``/``enabled`` check when
the module-default bundle is disabled.  This bench holds the end-to-end
cost of those checks on the hot packing path — PR 1's 100k-file first-fit
bench — under 3 %: the baseline replicates the cache's non-observability
work (fingerprint + size-column extraction + kernel + store), so the
measured delta is exactly what the instrumentation added.

Methodology: samples are interleaved with alternating order, the GC is
held off (a collection landing inside one side's sample would dominate
the 3 % bound), and the medians of the paired samples are compared.  One
re-measure is allowed before failing — the bound is ~0.4 ms on this
kernel, within reach of scheduler noise on a shared host, while a real
regression fails both attempts.
"""

import gc
import statistics
import time

from repro.corpus import html_18mil_like
from repro.obs import get_obs
from repro.packing import PackingCache
from repro.packing.first_fit import first_fit_layout
from repro.units import MB

ROUNDS = 20
ATTEMPTS = 2
OVERHEAD_BUDGET = 0.03


def _paired_overhead(instrumented, baseline, rounds=ROUNDS):
    """Relative overhead of ``instrumented`` over ``baseline``.

    Interleaved, order-alternated sampling with the GC parked; returns
    ``median(instrumented) / median(baseline) - 1``.
    """
    ta, tb = [], []
    gc.collect()
    gc.disable()
    try:
        for i in range(rounds):
            pair = ((instrumented, ta), (baseline, tb))
            if i % 2:
                pair = tuple(reversed(pair))
            for fn, out in pair:
                t0 = time.perf_counter()
                fn()
                out.append(time.perf_counter() - t0)
            gc.collect(0)
    finally:
        gc.enable()
    return statistics.median(ta) / statistics.median(tb) - 1.0


def test_tracer_off_overhead_on_100k_pack(benchmark):
    """Instrumented cache path vs an obs-free replica, observability off."""
    assert not get_obs().enabled, "bench requires the disabled default"
    cat = html_18mil_like(scale=5.6e-3)   # ~100k files, as in PR 1's bench
    capacity = 100 * MB
    cat.fingerprint()                     # memoise outside the timed region
    n_items = len(cat)

    def baseline():
        # pack_layout minus the observability calls: same fingerprint,
        # same column extraction, same kernel, same store shape
        store = {}
        key = (cat.fingerprint(), "first_fit", True, capacity)
        layouts = first_fit_layout(cat.sizes().tolist(), capacity)
        store[key] = layouts
        return layouts

    def instrumented():
        # a fresh cache forces the miss path through every obs check
        return PackingCache().pack_layout(cat, capacity,
                                          heuristic="first_fit")

    baseline(), instrumented()            # shared warmup

    overheads = []
    for _ in range(ATTEMPTS):
        overheads.append(_paired_overhead(instrumented, baseline))
        if overheads[-1] < OVERHEAD_BUDGET:
            break
    # pytest-benchmark records the instrumented path for the trajectory
    layouts = benchmark.pedantic(instrumented, rounds=3, iterations=1)
    assert sum(len(l.indices) for l in layouts) == n_items
    assert min(overheads) < OVERHEAD_BUDGET, (
        f"disabled-observability overhead {min(overheads):.1%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} in {ATTEMPTS} attempts ({overheads})")


def test_tracer_off_overhead_on_bucket_storm(benchmark):
    """A disabled tracer on the bucket scheduler must match tracer-None.

    ``SimulationEngine`` normalises a disabled tracer to ``None`` so the
    hot loop stays branch-free; if that normalisation is ever lost, every
    disabled-observability engine run pays a per-event tracer branch.
    This guard measures the 100k-event storm both ways and holds the
    delta under 3%.
    """
    from repro.obs.trace import Tracer
    from repro.sim.engine import SimulationEngine

    n = 100_000
    times = [((i * 2654435761) & 0xFFFFF) / 16.0 for i in range(n)]

    def _noop():
        pass

    def storm(tracer):
        engine = SimulationEngine(tracer=tracer, scheduler="bucket")
        engine.schedule_batch(times, _noop, "storm")
        engine.run()
        assert engine.events_fired == n

    def instrumented():
        storm(Tracer(enabled=False))

    def baseline():
        storm(None)

    instrumented(), baseline()            # shared warmup
    overheads = []
    for _ in range(ATTEMPTS + 1):         # 100k-event rounds: one extra retry
        overheads.append(_paired_overhead(instrumented, baseline, rounds=10))
        if overheads[-1] < OVERHEAD_BUDGET:
            break
    benchmark.pedantic(instrumented, rounds=3, iterations=1)
    assert min(overheads) < OVERHEAD_BUDGET, (
        f"disabled-tracer bucket storm overhead {min(overheads):.1%} "
        f"exceeds {OVERHEAD_BUDGET:.0%} in {len(overheads)} attempts "
        f"({overheads})")


def test_obs_off_overhead_on_columnar_fleet(benchmark):
    """Flight-recorder emission must not tax the columnar fast path.

    The columnar runner consults ``get_run_ledger()`` once per column and,
    when a ledger is active, serialises one record.  With observability
    disabled that record is small (no metrics dump, no span rollup), so a
    ledgered 20k-member fleet run must stay within 3% of an un-ledgered
    one — the guard that keeps always-on flight recording viable.
    """
    from repro.apps import GrepApplication, GrepCostProfile
    from repro.cloud import Cloud, Workload
    from repro.core import reshape
    from repro.corpus import text_400k_like
    from repro.obs.ledger import RunLedger, set_run_ledger
    from repro.runner import execute_uniform_fleet

    assert not get_obs().enabled, "bench requires the disabled default"
    workload = Workload("scan", GrepApplication(), GrepCostProfile())
    units = list(reshape(text_400k_like(scale=1e-3), None).units)[:6]
    n = 20_000

    def run_fleet():
        execute_uniform_fleet(Cloud(seed=42), workload, n, units,
                              deadline=3600.0)

    def instrumented():
        previous = set_run_ledger(RunLedger(None))
        try:
            run_fleet()
        finally:
            set_run_ledger(previous)

    instrumented(), run_fleet()           # shared warmup
    overheads = []
    for _ in range(ATTEMPTS):
        overheads.append(_paired_overhead(instrumented, run_fleet, rounds=8))
        if overheads[-1] < OVERHEAD_BUDGET:
            break
    benchmark.pedantic(instrumented, rounds=3, iterations=1)
    assert min(overheads) < OVERHEAD_BUDGET, (
        f"ledgered columnar fleet overhead {min(overheads):.1%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} in {ATTEMPTS} attempts ({overheads})")


def test_disabled_tracer_span_is_nanoseconds(benchmark):
    """The no-op span handout must stay an identity return, not an alloc."""
    from repro.obs.trace import NULL_SPAN, Tracer

    tracer = Tracer(enabled=False)

    def span_calls():
        for _ in range(1000):
            with tracer.span("bench.noop", cat="bench", n=1):
                pass

    benchmark(span_calls)
    assert tracer.span("bench.noop") is NULL_SPAN
    assert tracer.span_count == 0
