"""Bench X6: analytical vs empirical vs historical prediction (§4).

"Performance estimation can be done through analytical modeling,
empirically and by relying on historical data.  Since the characteristics
of our cloud computing environment are volatile and opaque, we find that
determining an empirical application performance model is preferable."

All three approaches predict the same held-out job — a multi-GB grep at
100 MB units on the vetted instance — from what they would realistically
have available:

* **analytical**: bonnie bandwidth + differential microbenchmarks;
* **empirical**: the §4 probe regression on the vetted instance;
* **historical**: past runs of *whatever instances served them* (mixed
  quality), volume-interpolated.
"""

from conftest import show, single_shot

from repro.experiments import exp_side
from repro.report import ComparisonTable


def test_prediction_approach_comparison(benchmark):
    fig, out = single_shot(benchmark, exp_side.prediction_approaches)
    show(fig)
    actual, preds, errors = out["actual"], out["predictions"], out["errors"]
    print(f"\nheld-out run: {actual:.1f}s actual")
    for k in ("analytical", "empirical", "historical"):
        print(f"  {k:>10}: predicted {preds[k]:7.1f}s  (error {errors[k]:.1%})")
    table = ComparisonTable()
    table.add("X6", "empirical model is the most accurate",
              "empirical preferable (§4)",
              f"errors: emp {errors['empirical']:.1%}, "
              f"ana {errors['analytical']:.1%}, "
              f"hist {errors['historical']:.1%}",
              errors["empirical"] <= min(errors["analytical"],
                                         errors["historical"]) + 0.02)
    table.add("X6", "empirical error small on its own instance", "few %",
              f"{errors['empirical']:.1%}", errors["empirical"] < 0.10)
    print(table.render())
    assert table.all_agree
