"""Bench F5: fine unit-size sampling — repeatable EBS placement spikes (Fig. 5)."""

import numpy as np
from conftest import show, single_shot

from repro.experiments import exp_grep
from repro.report import ComparisonTable


def test_fig5_placement_spikes(benchmark, grep_testbed):
    fig, out = single_shot(benchmark, exp_grep.fig5, grep_testbed)
    show(fig)
    table = ComparisonTable()
    table.add("F5", "plateau is not smooth: spikes exist", "spikes observed",
              f"{len(out['spikes'])} spike(s)", len(out["spikes"]) >= 1)
    if out["spikes"]:
        worst = max(s[2] for s in out["spikes"])
        table.add("F5", "spike magnitude", "up to ~3x",
                  f"{worst:.2f}x the volume median", 1.25 <= worst <= 3.5)
        drift = max(abs(r - 1.0) for r in out["repeat_ratios"])
        table.add("F5", "spikes are repeatable and stable in time",
                  "repeatable (not contention)",
                  f"re-measure drift {drift:.1%}", drift < 0.10)
    print(table.render())
    assert table.all_agree
