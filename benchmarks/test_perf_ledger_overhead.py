"""Perf guard: flight-recorder emission must cost <2% on the runner core.

Every ``ExecutionCore.run`` pays one ``get_run_ledger()`` read; with a
ledger active it additionally builds and appends one ``RunRecord``
(config, billing summary, deadline outcome, phase profile — metrics and
span rollups only when observability is on).  This bench drives the
64-instance event-driven plan the trajectory file tracks, ledgered vs
un-ledgered, with the same interleaved paired-median methodology as the
observability overhead guard, and holds the emission cost under 2%.
"""

import gc
import statistics
import time

import numpy as np
import pytest

from repro.apps import PosCostProfile, PosTaggerApplication
from repro.cloud import Cloud, Workload
from repro.core import reshape
from repro.core.planner import ProvisioningPlan
from repro.corpus import text_400k_like
from repro.obs import get_obs
from repro.obs.ledger import RunLedger, get_run_ledger, set_run_ledger
from repro.perfmodel.regression import fit_affine
from repro.runner import execute_plan_event_driven

ROUNDS = 14
ATTEMPTS = 3
OVERHEAD_BUDGET = 0.02


def _paired_overhead(instrumented, baseline, rounds=ROUNDS):
    ta, tb = [], []
    gc.collect()
    gc.disable()
    try:
        for i in range(rounds):
            pair = ((instrumented, ta), (baseline, tb))
            if i % 2:
                pair = tuple(reversed(pair))
            for fn, out in pair:
                t0 = time.perf_counter()
                fn()
                out.append(time.perf_counter() - t0)
            gc.collect(0)
    finally:
        gc.enable()
    return statistics.median(ta) / statistics.median(tb) - 1.0


def _plan(n_bins: int = 64) -> tuple[ProvisioningPlan, Workload]:
    units = list(reshape(text_400k_like(scale=0.02), None).units)
    model = fit_affine(np.array([1e5, 1e6, 5e6]),
                       0.327 + 0.865e-4 * np.array([1e5, 1e6, 5e6]))
    assignments = [units[i::n_bins] for i in range(n_bins)]
    plan = ProvisioningPlan(
        deadline=240.0, planning_deadline=240.0, strategy="uniform",
        predictor_name="affine", assignments=assignments,
        predicted_times=[model.predict(sum(u.size for u in b))
                         for b in assignments])
    workload = Workload("postag", PosTaggerApplication(), PosCostProfile())
    return plan, workload


@pytest.mark.perf
def test_ledger_emission_overhead_on_event_driven_plan(benchmark):
    assert not get_obs().enabled, "bench requires the disabled default"
    assert get_run_ledger() is None, "bench requires no active ledger"
    plan, workload = _plan()

    def run_plan():
        execute_plan_event_driven(Cloud(seed=2010), workload, plan)

    def ledgered():
        previous = set_run_ledger(RunLedger(None))
        try:
            run_plan()
        finally:
            set_run_ledger(previous)

    ledgered(), run_plan()                # shared warmup
    overheads = []
    for _ in range(ATTEMPTS):
        overheads.append(_paired_overhead(ledgered, run_plan))
        if overheads[-1] < OVERHEAD_BUDGET:
            break
    benchmark.pedantic(ledgered, rounds=3, iterations=1)
    assert min(overheads) < OVERHEAD_BUDGET, (
        f"ledger emission overhead {min(overheads):.1%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} in {ATTEMPTS} attempts ({overheads})")


@pytest.mark.perf
def test_ledgered_run_emits_exactly_one_record(benchmark):
    plan, workload = _plan(n_bins=16)
    ledger = RunLedger(None)

    def run_once():
        previous = set_run_ledger(ledger)
        try:
            execute_plan_event_driven(Cloud(seed=2010), workload, plan)
        finally:
            set_run_ledger(previous)

    benchmark.pedantic(run_once, rounds=2, iterations=1)
    records = ledger.records(kind="runner")
    assert len(records) == len(ledger.records())   # nothing else leaked
    assert all(r.label == "execute_plan_event_driven" for r in records)
