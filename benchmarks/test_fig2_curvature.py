"""Bench F2: curve shapes and the §5 marginal provisioning rule."""

import pytest
from conftest import show, single_shot

pytestmark = pytest.mark.smoke  # fast enough for the CI benchmark smoke job

from repro.experiments import exp_fig2
from repro.report import ComparisonTable


def test_fig2_marginal_rule(benchmark):
    fig, out = single_shot(benchmark, exp_fig2.fig2)
    show(fig)
    table = ComparisonTable()
    table.add("F2", "convex (b>1) strategy", "start new instances",
              out["convex_rule"], out["convex_rule"] == "start-new-instances")
    table.add("F2", "concave (b<1) strategy", "pack to deadline",
              out["concave_rule"], out["concave_rule"] == "pack-to-deadline")
    # quantitative backing for the rule
    cx = out["convex_marginal"]
    cc = out["concave_marginal"]
    table.add("F2", "convex: fresh hour beats packed hour", "yes",
              f"{cx['first_hour']:.3g} vs {cx['last_hour']:.3g} B",
              cx["first_hour"] > cx["last_hour"])
    table.add("F2", "concave: packed hour beats fresh hour", "yes",
              f"{cc['last_hour']:.3g} vs {cc['first_hour']:.3g} B",
              cc["last_hour"] > cc["first_hour"])
    print(table.render())
    assert table.all_agree
