"""True performance benchmarks (multi-round timings) for the hot kernels.

Unlike the figure benches, these exercise pytest-benchmark's statistics:
the packing and corpus-generation kernels are the paths that must scale to
18-million-file catalogues, and these benches guard their asymptotics.
All four packing heuristics are asymptotics-guarded here; ``make
bench-json`` distils the timings into ``BENCH_packing.json`` so future PRs
have a committed baseline trajectory.
"""

from repro.corpus import html_18mil_like, text_400k_like
from repro.packing import (
    PackingCache,
    first_fit,
    pack_into_n_bins,
    subset_sum_first_fit,
    uniform_bins,
)
from repro.units import KB, MB


def test_perf_first_fit_100k_items(benchmark):
    """Vectorised first-fit on a 100k-file catalogue (was 18 s quadratic;
    the NumPy scan holds it under a second)."""
    cat = html_18mil_like(scale=5.6e-3)   # ~100k files
    items = cat.items()
    bins = benchmark(first_fit, items, 100 * MB)
    assert sum(len(b) for b in bins) == len(items)


def test_perf_subset_sum_merge(benchmark):
    cat = text_400k_like(scale=0.1)       # 40k files
    items = cat.items()
    bins = benchmark(subset_sum_first_fit, items, 1 * MB)
    assert sum(len(b) for b in bins) == len(items)


def test_perf_uniform_bins(benchmark):
    cat = text_400k_like(scale=0.1)
    items = cat.items()
    bins = benchmark(uniform_bins, items, 27)
    assert len(bins) == 27


def test_perf_pack_into_n_bins_100k_items(benchmark):
    """Fixed-bin first-fit (the §5.2 provisioning step) at 100k files —
    O(n log B) on the segment tree, where the reference rescans all bins."""
    cat = html_18mil_like(scale=5.6e-3)   # ~100k files
    items = cat.items()
    n = 30
    capacity = int(cat.total_size / n * 1.02)
    bins = benchmark(pack_into_n_bins, items, n, capacity)
    assert sum(len(b) for b in bins) == len(items)


def test_perf_uniform_bins_100k_items(benchmark):
    """Greedy balanced binning (order broken) at 100k files — lightest-bin
    lookups through the engine's lazy heap."""
    cat = html_18mil_like(scale=5.6e-3)
    items = cat.items()
    bins = benchmark(uniform_bins, items, 30, preserve_order=False)
    assert sum(len(b) for b in bins) == len(items)
    assert len(bins) == 30


def test_perf_probe_set_cache_hit(benchmark):
    """Repeated probe-set packing must hit the campaign cache: the base
    size packs once, multiples derive by coalescing, repeats memoise."""
    from repro.perfmodel.probes import build_probe_set

    cat = text_400k_like(scale=0.1)       # 40k files
    volume = cat.total_size // 2
    sizes = [256 * KB, 512 * KB, 1 * MB, 2 * MB]
    cache = PackingCache()
    build_probe_set(cat, volume, sizes, cache=cache)  # warm the cache

    ps = benchmark(build_probe_set, cat, volume, sizes, cache=cache)
    assert set(ps.labels()) == {"orig", *sizes}
    assert cache.stats()["hits"] > 0


def test_perf_catalogue_construction(benchmark):
    cat = benchmark(text_400k_like, 0.05)
    assert len(cat) == 20_000


def test_perf_estimate_work_pos(benchmark):
    from repro.apps import PosTaggerApplication, as_unit_meta

    cat = text_400k_like(scale=0.05)
    metas = [as_unit_meta(u) for u in cat]
    app = PosTaggerApplication()
    work = benchmark(app.estimate_work, metas)
    assert work.tokens > 0


def test_perf_first_fit_million_items(benchmark):
    """Asymptotics guard at real-paper scale: a million-file slice of the
    18 M-file corpus packs into 100 MB units in seconds, not hours."""
    cat = html_18mil_like(scale=5.6e-2)    # ~1.01 M files
    items = cat.items()

    def pack():
        return subset_sum_first_fit(items, 100 * MB)

    bins = benchmark.pedantic(pack, rounds=1, iterations=1)
    assert sum(len(b) for b in bins) == len(items)


def test_perf_text_generation(benchmark):
    from repro.corpus import generate_text
    from repro.sim.random import RngStream

    def gen():
        return generate_text(RngStream(1), 50_000)

    text = benchmark(gen)
    assert len(text) == 50_000
