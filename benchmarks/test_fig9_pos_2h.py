"""Bench F9: POS scheduling for D = 2 h (Fig. 9(a)–(c))."""

from conftest import show, single_shot

from repro.experiments import exp_pos
from repro.report import ComparisonTable


def test_fig9_two_hour_scheduling(benchmark, pos_testbed):
    fig, out = single_shot(benchmark, exp_pos.fig9, pos_testbed)
    show(fig)
    v = out["variants"]
    a9, b9, c9 = (v["9a_uniform_model3"], v["9b_uniform_model4"],
                  v["9c_adjusted_model4"])
    table = ComparisonTable()
    table.add("F9a", "instances for D=2h from model (3)", "14",
              str(a9["instances"]), 11 <= a9["instances"] <= 17)
    table.add("F9b", "model (4) prescribes fewer instances", "11 < 14",
              f"{b9['instances']} <= {a9['instances']}",
              b9["instances"] <= a9["instances"])
    table.add("F9b", "fewer instances, fewer planned instance-hours", "22 < 28",
              f"{b9['instances'] * 2} < {a9['instances'] * 2}",
              b9["instances"] < a9["instances"] or b9["instance_hours"] <= a9["instance_hours"])
    table.add("F9c", "adjusted deadline", "6247 s",
              f"{out['adjusted_deadline']:.0f} s",
              5600 < out["adjusted_deadline"] < 6800)
    table.add("F9c", "adjusted plan is more conservative than 9b",
              "more instances",
              f"{c9['instances']} >= {b9['instances']}",
              c9["instances"] >= b9["instances"])
    table.add("F9c", "adjusted misses no more than 9b", "meets deadline",
              f"{c9['missed']} <= {b9['missed']}", c9["missed"] <= b9["missed"])
    print(table.render())
    assert table.all_agree
