#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md by running every experiment in bench order.

The grep experiments share one testbed and the POS experiments another, in
the same order the benchmarks use, so the recorded numbers match what
``pytest benchmarks/ --benchmark-only`` prints.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments import exp_fig1, exp_fig2, exp_grep, exp_pos, exp_side
from repro.report import ComparisonTable

OUT = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"


def main() -> None:
    t = ComparisonTable()
    notes: list[str] = []

    # ---- data sets -----------------------------------------------------
    _, s1a = exp_fig1.fig1a()
    t.add("F1a", "HTML set: fraction under 50 kB", "majority",
          f"{s1a['frac_under_50kb']:.0%}", s1a["frac_under_50kb"] > 0.5)
    t.add("F1a", "HTML set: largest file", "43 MB", f"{s1a['max_mb']:.0f} MB",
          abs(s1a["max_mb"] - 43) < 0.5)
    _, s1b = exp_fig1.fig1b()
    t.add("F1b", "text set: fraction under 1 kB", ">40%",
          f"{s1b['frac_under_1kb']:.0%}", s1b["frac_under_1kb"] > 0.4)
    t.add("F1b", "text set: total volume at 400k files", "~1 GB",
          f"{s1b['total_gb_at_full_scale']:.2f} GB",
          0.7 < s1b["total_gb_at_full_scale"] < 1.4)
    t.add("F1b", "text set: largest file", "705 kB", f"{s1b['max_kb']:.0f} kB",
          abs(s1b["max_kb"] - 705) < 1)

    # ---- curve shapes ----------------------------------------------------
    _, s2 = exp_fig2.fig2()
    t.add("F2", "convex model strategy", "start new instances",
          s2["convex_rule"], s2["convex_rule"] == "start-new-instances")
    t.add("F2", "concave model strategy", "pack to deadline",
          s2["concave_rule"], s2["concave_rule"] == "pack-to-deadline")

    # ---- grep -----------------------------------------------------------
    gtb = exp_grep.make_testbed()
    _, s3 = exp_grep.fig3()
    t.add("F3", "1 MB probe: worst coefficient of variation",
          "large std, discarded", f"{s3['max_cv']:.2f}", s3["max_cv"] > 0.25)
    _, s4 = exp_grep.fig4(gtb)
    t.add("F4", "plateau spread across 10 MB–2 GB units", "flat plateau",
          f"{s4['plateau_spread']:.1%}", s4["plateau_spread"] < 0.10)
    t.add("F4", "original files vs plateau", "several-fold slower",
          f"{s4['orig_over_plateau']:.1f}x", s4["orig_over_plateau"] > 3)
    _, s5 = exp_grep.fig5(gtb)
    worst_spike = max((s[2] for s in s5["spikes"]), default=0.0)
    t.add("F5", "placement spikes on the plateau", "up to ~3x, repeatable",
          f"{len(s5['spikes'])} spikes, worst {worst_spike:.2f}x",
          len(s5["spikes"]) >= 1 and worst_spike <= 3.5)
    drift = max((abs(r - 1) for r in s5["repeat_ratios"]), default=0.0)
    t.add("F5", "spike repeatability (re-measure drift)", "repeatable",
          f"{drift:.1%}", drift < 0.10)
    _, s6 = exp_grep.fig6(gtb)
    t.add("E1", "Eq.(1) slope s/byte", "1.324e-8", f"{s6['eq1']['b']:.3e}",
          abs(s6["eq1"]["b"] - 1.324e-8) / 1.324e-8 < 0.25)
    t.add("E1", "Eq.(1) R²", "0.999", f"{s6['eq1']['r2']:.4f}",
          s6["eq1"]["r2"] > 0.99)
    t.add("F6", "actual vs clean-instance prediction", "+30%",
          f"{s6['underestimate']:+.0%}", 0.02 < s6["underestimate"] < 0.6)
    t.add("E2", "refit prediction gap", "+20%",
          f"{s6['refit_underestimate']:+.0%}",
          -0.1 < s6["refit_underestimate"] < 0.6)
    t.add("F6", "reshaping gain over original files", "5.6x",
          f"{s6['improvement']:.1f}x", 3.5 < s6["improvement"] < 9)
    notes.append(
        f"F6 executes 10 GB (scaled from the paper's 100 GB) on an unvetted "
        f"instance (hidden io_factor {s6['runner_io_factor']:.2f}) across 10 "
        f"EBS devices; the prediction gap comes from placement quality and "
        f"measurement noise the clean-instance model never saw.")

    # ---- POS -------------------------------------------------------------
    ptb = exp_pos.make_testbed()
    _, s7 = exp_pos.fig7(ptb)
    best_merged = min(v for k, v in s7["means"].items() if k != "orig")
    t.add("F7", "original segmentation fares best", "orig minimal",
          f"orig {s7['means']['orig']:.1f}s vs best merged {best_merged:.1f}s",
          s7["means"]["orig"] <= best_merged * 1.02)
    t.add("F7", "probe composition orig vs 1 kB units", "2183 vs 1000 files",
          f"{s7['n_orig_files']} vs {s7['n_1kb_units']}",
          s7["n_orig_files"] > 1.8 * s7["n_1kb_units"])
    t.add("F7", "degradation at 1000 kB units", "pronounced",
          f"{s7['degradation_at_1000kb']:.2f}x", s7["degradation_at_1000kb"] > 1.3)

    _, s8 = exp_pos.fig8(ptb)
    v8 = s8["variants"]
    t.add("E3", "Eq.(3) slope s/byte", "0.865e-4", f"{s8['eq3']['b']:.3e}",
          abs(s8["eq3"]["b"] - 0.865e-4) / 0.865e-4 < 0.45)
    t.add("E3", "instances for D=1h (model 3)", "27",
          str(v8["8a_first_fit_model3"]["instances"]),
          22 <= v8["8a_first_fit_model3"]["instances"] <= 33)
    t.add("E4", "Eq.(4) slope below Eq.(3)", "0.7255e-4 < 0.865e-4",
          f"{s8['eq4']['b']:.3e} < {s8['eq3']['b']:.3e}",
          s8["eq4"]["b"] < s8["eq3"]["b"])
    t.add("E4", "instances for D=1h (model 4)", "22",
          str(v8["8c_uniform_model4"]["instances"]),
          v8["8c_uniform_model4"]["instances"]
          < v8["8a_first_fit_model3"]["instances"])
    t.add("F8b", "uniform bins lower the worst predicted bin",
          "meets deadline at equal cost",
          f"max pred {max(v8['8b_uniform_model3']['plan'].predicted_times):.0f}s "
          f"vs {max(v8['8a_first_fit_model3']['plan'].predicted_times):.0f}s",
          max(v8["8b_uniform_model3"]["plan"].predicted_times)
          < max(v8["8a_first_fit_model3"]["plan"].predicted_times))
    t.add("F8b", "misses: uniform <= first-fit", "0 vs some",
          f"{v8['8b_uniform_model3']['missed']} vs "
          f"{v8['8a_first_fit_model3']['missed']}",
          v8["8b_uniform_model3"]["missed"] <= v8["8a_first_fit_model3"]["missed"])
    t.add("F8d", "adjusted deadline for 10% miss odds", "3124 s",
          f"{s8['adjusted_deadline']:.0f} s",
          2800 < s8["adjusted_deadline"] < 3400)
    t.add("F8d", "adjusted plan: fewer misses, more instance-hours",
          "fewer misses, 30 vs 27 inst-h",
          f"missed {v8['8d_adjusted_model4']['missed']} vs "
          f"{v8['8c_uniform_model4']['missed']}, inst-h "
          f"{v8['8d_adjusted_model4']['instance_hours']} vs "
          f"{v8['8c_uniform_model4']['instance_hours']}",
          v8["8d_adjusted_model4"]["missed"] <= v8["8c_uniform_model4"]["missed"]
          and v8["8d_adjusted_model4"]["instance_hours"]
          >= v8["8c_uniform_model4"]["instance_hours"])

    _, s9 = exp_pos.fig9(ptb)
    v9 = s9["variants"]
    t.add("F9a", "instances for D=2h (model 3)", "14",
          str(v9["9a_uniform_model3"]["instances"]),
          11 <= v9["9a_uniform_model3"]["instances"] <= 17)
    t.add("F9b", "model 4 prescribes fewer instances", "11 < 14",
          f"{v9['9b_uniform_model4']['instances']} <= "
          f"{v9['9a_uniform_model3']['instances']}",
          v9["9b_uniform_model4"]["instances"]
          <= v9["9a_uniform_model3"]["instances"])
    t.add("F9c", "adjusted deadline", "6247 s",
          f"{s9['adjusted_deadline']:.0f} s",
          5600 < s9["adjusted_deadline"] < 6800)
    t.add("F9c", "adjusted plan misses no more than 9b", "meets deadline",
          f"{v9['9c_adjusted_model4']['missed']} <= "
          f"{v9['9b_uniform_model4']['missed']}",
          v9["9c_adjusted_model4"]["missed"] <= v9["9b_uniform_model4"]["missed"])
    notes.append(
        "F8/F9 run at the paper's operating point (V/f⁻¹(1 h) ≈ 26.1, "
        "847 MB catalogue); the per-instance execution fleets include "
        "hidden stragglers, so a small number of marginal misses persists "
        "in every variant, as in the paper's own figures.")
    em3 = v8["8b_uniform_model3"]["expected_missed"]
    em4 = v8["8c_uniform_model4"]["expected_missed"]
    notes.append(
        f"Miss-count calibration (an analysis the paper implies but never "
        f"reports): the head-probe model (3) expects {em3:.1f} misses where "
        f"{v8['8b_uniform_model3']['missed']} occur — its residual spread is "
        f"inflated by the probe head's complexity bias — while the sampled "
        f"refit (4) expects {em4:.1f} against "
        f"{v8['8c_uniform_model4']['missed']} observed; random sampling "
        f"fixes the *calibration*, not just the slope.")

    # ---- side experiments -------------------------------------------------
    _, sn = exp_pos.novels()
    t.add("X1", "novels word counts", "67,496 / 67,755",
          f"{sn['words']['dubliners']} / {sn['words']['agnes_grey']}",
          sn["word_gap"] < 300)
    t.add("X1", "complex/simple prose time ratio", "1.72x",
          f"{sn['ratio']:.2f}x", 1.35 < sn["ratio"] < 2.2)

    _, sw = exp_side.instance_switching()
    t.add("X2", "keep slow instance: GB next hour", "~210 GB",
          f"{sw['keep_gb']:.0f} GB", 190 < sw["keep_gb"] < 230)
    t.add("X2", "swap to fast: extra GB", "~57 GB",
          f"{sw['extra_if_fast_gb']:.0f} GB", 30 < sw["extra_if_fast_gb"] < 90)
    t.add("X2", "swap to slow again: GB lost", "~10 GB",
          f"{sw['lost_if_slow_gb']:.1f} GB", 5 < sw["lost_if_slow_gb"] < 15)

    _, sp = exp_side.probe_protocol_trace()
    t.add("X3", "probe protocol escalates to stability",
          "discard unstable, grow volume",
          f"{sp['rounds']} rounds, volumes {sp['volumes']}, "
          f"stable={sp['stable']}", sp["stable"])

    _, sx6 = exp_side.prediction_approaches()
    err = sx6["errors"]
    t.add("X6", "empirical beats analytical & historical prediction",
          "empirical preferable (§4)",
          f"errors: emp {err['empirical']:.1%}, ana {err['analytical']:.1%}, "
          f"hist {err['historical']:.1%}",
          err["empirical"] <= min(err["analytical"], err["historical"]) + 0.02)

    _, sv = exp_side.sampling_vitality()
    t.add("X7", "sampling marginal for uniform corpora, vital for clustered",
          "no dramatic improvement vs vital (§5.2)",
          f"uniform {sv['uniform_news']['head_error']:.1%}→"
          f"{sv['uniform_news']['refit_error']:.1%}; clustered "
          f"{sv['clustered_domains']['head_error']:.1%}→"
          f"{sv['clustered_domains']['refit_error']:.1%}",
          sv["clustered_domains"]["improvement"]
          > 3 * abs(sv["uniform_news"]["improvement"]))

    _, sr = exp_side.output_retrieval()
    t.add("X4", "merged output retrieval speedup", "shorter retrieval",
          f"{sr['speedup']:.1f}x", sr["speedup"] > 1.5)

    _, ss = exp_side.spot_tradeoff()
    done = [r for r in ss["bids"] if r[1] is not None]
    t.add("X5", "spot cheaper than on-demand (resume-capable work)",
          "cheaper, later",
          f"${ss['cheapest_done']:.2f} vs ${ss['on_demand_cost']:.2f}",
          bool(done) and ss["cheapest_done"] < ss["on_demand_cost"])

    # ---- write -----------------------------------------------------------
    body = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Regenerated by `python scripts/generate_experiments_md.py`; the same",
        "experiments run under `pytest benchmarks/ --benchmark-only`.",
        "",
        "The testbed is a deterministic EC2 simulation calibrated to the",
        "paper's reported constants; volumes are scaled (10 GB stands in for",
        "the 100 GB grep run; the POS corpus sits at the paper's ~26 "
        "instance-hour operating point).  The claims under test are the",
        "paper's *shapes* — who wins, by what factor, where crossovers fall —",
        "not 2010 testbed absolute times.",
        "",
        t.markdown(),
        "",
        "## Notes",
        "",
    ]
    body += [f"- {n}" for n in notes]
    body += [
        "- The paper's §5.2 quotes an adjustment factor a = 1.525 alongside "
        "D₁ = 3124 s for D = 3600 s; those are mutually inconsistent under "
        "its own D₁ = D/(1+a) (3600/2.525 ≈ 1426).  The D₁ values imply "
        "a ≈ 0.152, and our residual analysis lands in that range, so we "
        "treat the quoted 1.525 as a typo and reproduce the D₁ arithmetic.",
        "- Eq. slopes: our Eq.(3)-analogue runs ~25% above the paper's "
        "0.865e-4 because the probe head of our synthetic corpus is more "
        "complex than its average (by construction — that is what makes the "
        "Eq.(4) refit drop, as in the paper) and the memory-residency "
        "penalty already binds on 2–3 kB files.  All instance-count and "
        "cost *orderings* derived from the models match the paper.",
    ]
    agree = sum(1 for r in t.rows if r.agree)
    body.insert(2, f"**{agree}/{len(t.rows)} comparisons agree.**")
    OUT.write_text("\n".join(body) + "\n", encoding="utf-8")
    print(t.render())
    print(f"\nwrote {OUT} ({agree}/{len(t.rows)} agree)")
    if agree != len(t.rows):
        sys.exit(1)


if __name__ == "__main__":
    main()
