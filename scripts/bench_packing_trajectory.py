#!/usr/bin/env python
"""Distil pytest-benchmark output into the committed BENCH_packing.json.

``make bench-json`` runs the kernel benchmarks with ``--benchmark-json`` and
pipes the result through this script, which reduces the full statistics dump
to one ``kernel -> {median_s, ops_per_s}`` map and appends it as a labelled
entry to ``BENCH_packing.json``.  The file therefore accumulates a
*trajectory*: one entry per significant packing-engine change, so a
regression shows up as a worsening median against the committed history
rather than against a number someone has to remember.

Usage::

    python scripts/bench_packing_trajectory.py --label "my change" RAW.json
    python scripts/bench_packing_trajectory.py --label "my change" --run

With ``--run`` the script invokes pytest itself (into a temp file); with a
positional path it distils an existing ``--benchmark-json`` dump.  Entries
with the same label are replaced, not duplicated, so re-running is
idempotent.
"""

from __future__ import annotations

import argparse
import json
import math
import subprocess
import sys
import tempfile
from datetime import date
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
OUT = REPO / "BENCH_packing.json"
BENCH_FILES = [
    "benchmarks/test_perf_kernels.py",
    "benchmarks/test_perf_obs_overhead.py",
    "benchmarks/test_perf_engine.py",
]
BENCH_FILE = BENCH_FILES[0]  # kept for the trajectory-file description


def run_benchmarks(raw_path: Path) -> None:
    """Run the kernel bench suite, writing pytest-benchmark JSON to ``raw_path``."""
    cmd = [
        sys.executable, "-m", "pytest", *BENCH_FILES,
        "--benchmark-only", f"--benchmark-json={raw_path}", "-q",
    ]
    res = subprocess.run(cmd, cwd=REPO, env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin:/usr/local/bin"})
    if res.returncode != 0:
        raise SystemExit(f"benchmark run failed (exit {res.returncode})")


def collect_obs_stats() -> dict:
    """Observability facts for the entry: cache hit-rate and span volume.

    Runs the same probe-set workload twice against one shared cache with
    the observability bundle enabled — the second pass must be all hits —
    and reports the packing-cache counters plus how many trace records the
    instrumentation produced.  A future change that silently stops caching
    (hit-rate drop) or floods the tracer (span-count jump) shows up in the
    trajectory next to the kernel medians it would distort.
    """
    sys.path.insert(0, str(REPO / "src"))
    from repro import obs as obs_mod
    from repro.corpus import text_400k_like
    from repro.packing import PackingCache
    from repro.perfmodel.probes import build_probe_set
    from repro.units import KB, MB

    o = obs_mod.configure()
    try:
        cat = text_400k_like(scale=0.1)          # 40k files, as in the bench
        cache = PackingCache()
        sizes = [256 * KB, 512 * KB, 1 * MB, 2 * MB]
        volume = cat.total_size // 2
        for _ in range(2):
            build_probe_set(cat, volume, sizes, cache=cache)
        counters = o.metrics.snapshot()["counters"]

        def total(prefix: str) -> float:
            return sum(v for k, v in counters.items() if k.startswith(prefix))

        hits = total("packing.cache.hits")
        misses = total("packing.cache.misses")
        return {
            "workload": "probe-set build x2, 40k files, 4 unit sizes",
            "cache_hits": int(hits),
            "cache_misses": int(misses),
            "cache_derived": int(total("packing.cache.derived")),
            "cache_hit_rate": round(hits / (hits + misses), 4)
            if hits + misses else 0.0,
            "span_count": o.tracer.span_count,
            "instant_count": len(o.tracer.instants),
        }
    finally:
        obs_mod.disable()


def collect_fleet_stats() -> dict:
    """Fleet-sharing facts for the entry: shared vs isolated economics.

    Runs the concurrent-campaigns experiment (8 grep+POS campaigns on one
    shared fleet vs the same plans run in isolation) and records the two
    bills, the warm-pool hit rate, and the miss rates.  A change that
    regresses the warm pool (hit-rate drop) or erodes the §7 sharing
    saving shows up in the trajectory like a kernel-median regression.
    """
    sys.path.insert(0, str(REPO / "src"))
    from repro.experiments.exp_fleet import shared_vs_isolated

    _, stats = shared_vs_isolated()
    return {
        "workload": f"{stats['n_campaigns']} concurrent grep+POS campaigns, "
                    "shared fleet vs isolated",
        "shared_cost_usd": stats["shared_cost_usd"],
        "isolated_cost_usd": stats["isolated_cost_usd"],
        "saving_pct": stats["saving_pct"],
        "warm_hit_rate": stats["warm_hit_rate"],
        "shared_miss_rate": stats["shared_miss_rate"],
        "isolated_miss_rate": stats["isolated_miss_rate"],
        "shared_instance_hours": stats["shared_instance_hours"],
        "isolated_instance_hours": stats["isolated_instance_hours"],
    }


def collect_chaos_stats() -> dict:
    """Chaos-sweep facts for the entry: miss rates with and without policy.

    Runs the full scenario x policy sweep (every shipped fault scenario,
    resilience on and off, the default seed set) and records per-scenario
    miss rates plus the two acceptance verdicts the resilience layer is
    held to: policy-on stays at or under a 10 % miss rate under *every*
    scenario, and policy-off exceeds 25 % under at least one.  A change
    that erodes a defence (retry, steering, hedging, degradation) flips
    a verdict or moves a miss rate in the trajectory.
    """
    sys.path.insert(0, str(REPO / "src"))
    from repro.experiments.exp_chaos import DEFAULT_SEEDS, chaos_sweep

    _, stats = chaos_sweep()
    scenarios = {
        name: {
            "on_miss_rate": cell["on"]["miss_rate"],
            "off_miss_rate": cell["off"]["miss_rate"],
            "on_mean_cost_usd": cell["on"]["mean_cost_usd"],
            "off_mean_cost_usd": cell["off"]["mean_cost_usd"],
        }
        for name, cell in sorted(stats.items())
    }
    return {
        "workload": f"{len(stats)} fault scenarios x (resilience on/off) "
                    f"x seeds {list(DEFAULT_SEEDS)}",
        "scenarios": scenarios,
        "on_worst_miss_rate": max(
            s["on_miss_rate"] for s in scenarios.values()),
        "off_worst_miss_rate": max(
            s["off_miss_rate"] for s in scenarios.values()),
        "acceptance_on_le_10pct_everywhere": all(
            s["on_miss_rate"] <= 0.10 for s in scenarios.values()),
        "acceptance_off_gt_25pct_somewhere": any(
            s["off_miss_rate"] > 0.25 for s in scenarios.values()),
    }


def collect_spot_stats() -> dict:
    """Spot-provisioning facts for the entry: cost ratio and miss rates.

    Runs the spot sweep (every interruption regime x fallback ladder
    on/off at the operating point, plus the bid x slack sensitivity
    grid) and records per-regime miss rates, the cost of the spot-mixed
    fleet against the pure on-demand baseline, and the two acceptance
    verdicts the ladder is held to: at most a 10 % miss rate under
    every regime, and a mean bill below pure on-demand.  The headline
    ``cost_ratio_vs_on_demand`` (mean over regimes, ladder on) feeds
    the ``--check`` gate: a change that erodes the spot saving — a
    ladder rung regressing to on-demand too eagerly, billing drift —
    moves it like a kernel-median regression.
    """
    sys.path.insert(0, str(REPO / "src"))
    from repro.experiments.exp_spot import evaluate_spot_slos, spot_sweep

    _, stats = spot_sweep()
    slo = evaluate_spot_slos(stats)
    regimes = {
        name: {
            "on_miss_rate": cell["on"]["miss_rate"],
            "off_miss_rate": cell["off"]["miss_rate"],
            "on_mean_cost_usd": cell["on"]["mean_cost_usd"],
            "on_mean_cost_ratio": cell["on"]["mean_cost_ratio"],
            "off_mean_cost_ratio": cell["off"]["mean_cost_ratio"],
        }
        for name, cell in sorted(stats["regimes"].items())
    }
    ratios = [r["on_mean_cost_ratio"] for r in regimes.values()]
    return {
        "workload": f"{len(regimes)} interruption regimes x (ladder "
                    "on/off) + bid x slack sensitivity grid",
        "regimes": regimes,
        "cost_ratio_vs_on_demand": round(sum(ratios) / len(ratios), 4),
        "on_worst_miss_rate": max(r["on_miss_rate"] for r in regimes.values()),
        "off_worst_miss_rate": max(
            r["off_miss_rate"] for r in regimes.values()),
        "slo_ok": {policy: rep.ok for policy, rep in sorted(slo.items())},
        "acceptance_on_le_10pct_everywhere": all(
            r["on_miss_rate"] <= 0.10 for r in regimes.values()),
        "acceptance_cheaper_than_on_demand_everywhere": all(
            r["on_mean_cost_ratio"] < 1.0 for r in regimes.values()),
    }


def collect_matrix_stats() -> dict:
    """Capacity-matrix facts for the entry: broker stacks under fire.

    Runs the broker-stack matrix (on-demand fleet control, spot ladder,
    spot with warm-lease escalation — each over both workflow shapes,
    every interruption regime and the default seeds) and records the
    per-(stack, regime) grid, the per-stack SLO verdicts, and the
    headline ``cost_ratio_vs_on_demand`` — the mean bill of the spot
    stacks relative to the like-for-like on-demand baseline.  That
    headline feeds the ``--check`` gate: a broker regression that makes
    the ladder escalate to list price too eagerly, leaks lease hours, or
    re-runs interrupted segments it already paid for moves the ratio
    toward 1.0 like a kernel-median regression.
    """
    sys.path.insert(0, str(REPO / "src"))
    from repro.experiments.exp_matrix import evaluate_matrix_slos, matrix_sweep

    _, stats = matrix_sweep()
    slo = evaluate_matrix_slos(stats)
    grid = {
        f"{g['stack']}@{g['regime']}": {
            "miss_rate": g["miss_rate"],
            "mean_cost_ratio": g["mean_cost_ratio"],
        }
        for g in stats["grid"]
    }
    spot_stacks = [s for s in ("spot", "spot-lease") if s in stats["stacks"]]
    ratios = [stats["stacks"][s]["mean_cost_ratio"] for s in spot_stacks]
    return {
        "workload": f"{len(stats['stacks'])} broker stacks x 2 shapes x "
                    "3 interruption regimes x default seeds",
        "grid": grid,
        "stack_miss_rates": {
            s: agg["miss_rate"] for s, agg in sorted(stats["stacks"].items())},
        "stack_cost_ratios": {
            s: agg["mean_cost_ratio"]
            for s, agg in sorted(stats["stacks"].items())},
        "cost_ratio_vs_on_demand": round(sum(ratios) / len(ratios), 4)
        if ratios else 1.0,
        "slo_ok": {s: r.ok for s, r in sorted(slo.items())},
        "acceptance_spot_le_10pct_everywhere": all(
            v["miss_rate"] <= 0.10 for k, v in grid.items()
            if k.split("@")[0] in spot_stacks),
        "acceptance_spot_cheaper_than_on_demand_everywhere": all(
            v["mean_cost_ratio"] < 1.0 for k, v in grid.items()
            if k.split("@")[0] in spot_stacks),
    }


#: Capability metrics are min-of-N: host interference is one-sided.
BEST_OF = 3


def host_calibration() -> float:
    """Host-speed probe: ops/s of a fixed pure-Python mixed workload.

    The gate compares throughput measured *now* against numbers committed
    from a different machine (or the same machine in a different load
    regime), so raw events/s are not comparable: CPU steal, frequency
    scaling and thermal state move every pure-Python workload roughly
    proportionally.  Each trajectory entry records this probe's ops/s at
    measurement time and ``--check`` normalises its own measurements by
    the calibration ratio before gating, so a correct build on a slow
    host is not flagged and a regressed build on a fast host is.
    Best-of-5 (interference is one-sided), ~50 ms per rep.
    """
    import time

    n = 200_000
    best = math.inf
    for _ in range(5):
        acc = 0
        d: dict[int, int] = {}
        t0 = time.perf_counter()
        for i in range(n):
            acc += i * i
            if not i % 17:
                d[i & 1023] = acc
        best = min(best, time.perf_counter() - t0)
    return n / best


def collect_runner_core_stats() -> dict:
    """Execution-core facts for the entry: event throughput at fleet scale.

    Runs one 64-instance plan through the event-driven configuration of
    ``ExecutionCore`` (the purest engine-scheduled path: fleet-ready
    barrier plus one completion event per bin) and reads wall-clock
    runtime, engine events fired, and events/sec off the flight-recorder
    :class:`~repro.obs.ledger.RunRecord` the core emits — the same record
    ``repro.cli runs diff`` compares, so the trajectory and the ledger
    can never disagree about what a run cost.  A change that bloats the
    core's per-event work — extra spans, accidental quadratic scans over
    grants — shows up here before it hurts the big experiments.

    The plan runs ``BEST_OF`` times and the fastest run's record is
    kept: scheduler interference on a shared host only ever slows a
    run down, so the minimum is the least-biased capability estimate
    and keeps the committed baseline comparable with ``--check``.
    """
    sys.path.insert(0, str(REPO / "src"))
    import numpy as np

    from repro.apps import PosCostProfile, PosTaggerApplication
    from repro.cloud import Cloud, Workload
    from repro.core import reshape
    from repro.core.planner import ProvisioningPlan
    from repro.corpus import text_400k_like
    from repro.obs.ledger import capture_runs, get_run_ledger
    from repro.perfmodel.regression import fit_affine
    from repro.runner import execute_plan_event_driven

    n_bins = 64
    units = list(reshape(text_400k_like(scale=0.02), None).units)
    model = fit_affine(np.array([1e5, 1e6, 5e6]),
                       0.327 + 0.865e-4 * np.array([1e5, 1e6, 5e6]))
    assignments = [units[i::n_bins] for i in range(n_bins)]
    plan = ProvisioningPlan(
        deadline=240.0, planning_deadline=240.0, strategy="uniform",
        predictor_name="affine", assignments=assignments,
        predicted_times=[model.predict(sum(u.size for u in b))
                         for b in assignments],
    )
    workload = Workload("postag", PosTaggerApplication(), PosCostProfile())

    record = report = timeline = None
    for _ in range(BEST_OF):
        cloud = Cloud(seed=2010)
        ledger = get_run_ledger()
        if ledger is not None:
            rep, tl = execute_plan_event_driven(cloud, workload, plan)
            rec = ledger.records(kind="runner",
                                 label="execute_plan_event_driven")[-1]
        else:
            with capture_runs() as mem:
                rep, tl = execute_plan_event_driven(cloud, workload, plan)
            rec = mem.records()[-1]
        if record is None or ((rec.get("profile.events_per_s") or 0.0)
                              > (record.get("profile.events_per_s") or 0.0)):
            record, report, timeline = rec, rep, tl
    wall = record.get("profile.wall_s") or 0.0
    return {
        "workload": f"event-driven core, {n_bins}-instance plan, "
                    f"{len(units)} units",
        "n_runs": len(report.runs),
        "timeline_points": len(timeline.points),
        "events_fired": record.get("profile.events_fired"),
        "wall_seconds": round(wall, 4),
        "events_per_s": round(record.get("profile.events_per_s") or 0.0, 1),
        "run_id": record.run_id,
    }


def collect_dag_stats() -> dict:
    """DAG-scheduler facts for the entry: backend sweep + event throughput.

    Two measurements.  First, the backend-comparison sweep
    (S3/EBS/local x linear/fan-out x the default seeds, plus the serial
    fan-out baseline): per-backend mean makespan/cost, the
    serial-over-concurrent speedup, and the campaign SLO verdict — a
    change that erodes stage-concurrency or mis-prices a backend moves
    these next to the kernel medians.  Second, the scheduler's own event
    throughput: one fan-out DAG run's flight-recorder profile
    (events fired / wall seconds), best of ``BEST_OF`` like every other
    capability metric, feeding the ``dag.events_per_s`` gate.
    """
    sys.path.insert(0, str(REPO / "src"))
    from repro.cloud import Cloud
    from repro.corpus import html_18mil_like
    from repro.dag import S3Backend, execute_dag, fanout_pipeline
    from repro.experiments.exp_dag import (
        DEADLINE,
        DEFAULT_SEEDS,
        SCALE,
        dag_sweep,
        evaluate_dag_slos,
    )
    from repro.obs.ledger import capture_runs, get_run_ledger

    _, stats = dag_sweep()
    slo = evaluate_dag_slos(stats)

    record = None
    for _ in range(BEST_OF):
        cloud = Cloud(seed=2010)
        cat = html_18mil_like(scale=SCALE, seed=2010)
        ledger = get_run_ledger()
        if ledger is not None:
            execute_dag(cloud, fanout_pipeline(), cat, DEADLINE,
                        backend=S3Backend(), label="bench.dag")
            rec = ledger.records(kind="dag", label="bench.dag")[-1]
        else:
            with capture_runs() as mem:
                execute_dag(cloud, fanout_pipeline(), cat, DEADLINE,
                            backend=S3Backend(), label="bench.dag")
            rec = mem.records()[-1]
        if record is None or ((rec.get("profile.events_per_s") or 0.0)
                              > (record.get("profile.events_per_s") or 0.0)):
            record = rec
    return {
        "workload": "backend sweep (3 backends x 2 shapes x seeds "
                    f"{list(DEFAULT_SEEDS)} + serial baseline); "
                    "fan-out DAG on S3 for throughput",
        "agg": stats["agg"],
        "speedup": stats["speedup"],
        "slo_ok": {b: r.ok for b, r in sorted(slo.items())},
        "events_fired": record.get("profile.events_fired"),
        "wall_seconds": round(record.get("profile.wall_s") or 0.0, 4),
        "events_per_s": round(record.get("profile.events_per_s") or 0.0, 1),
        "run_id": record.run_id,
    }


def collect_engine_stats() -> dict:
    """Simulation-core facts for the entry: raw event throughput and
    columnar fleet advance.

    Two measurements.  First, scheduler throughput: ``schedule_batch`` +
    ``run`` of a 200k-event storm on the heap and calendar-bucket
    schedulers, tracer off and on — the events/s headline the engine
    rewrite is held to (the pre-rewrite runner managed ~1.3k events/s
    end to end).  Second, the columnar uniform-fleet runner at 1k / 10k /
    100k instances, tracer off and on: wall seconds, member-advances/s,
    and the engine event count (exactly two — boot barrier plus fleet
    completion — whatever the fleet size).  Every timing is the best of
    ``BEST_OF`` repeats (interference only slows a run down), so the
    committed entry and the ``--check`` gate estimate the same quantity.
    """
    import time

    sys.path.insert(0, str(REPO / "src"))
    from repro import obs as obs_mod
    from repro.cloud import Cloud, Workload
    from repro.core import reshape
    from repro.corpus import text_400k_like
    from repro.obs import Tracer
    from repro.sim.engine import SimulationEngine

    def noop() -> None:
        pass

    n_storm = 200_000
    storm_times = [((i * 2654435761) & 0xFFFFF) / 16.0 for i in range(n_storm)]
    schedulers: dict = {}
    for scheduler in ("heap", "bucket"):
        for traced in (False, True):
            elapsed = math.inf
            for _ in range(BEST_OF):
                engine = SimulationEngine(tracer=Tracer() if traced else None,
                                          scheduler=scheduler)
                t0 = time.perf_counter()
                engine.schedule_batch(storm_times, noop, "storm")
                engine.run()
                elapsed = min(elapsed, time.perf_counter() - t0)
            key = f"{scheduler}_{'traced' if traced else 'fast'}"
            schedulers[key] = {
                "wall_seconds": round(elapsed, 4),
                "events_per_s": round(n_storm / elapsed, 1),
            }

    from repro.apps import GrepApplication, GrepCostProfile
    from repro.runner import execute_uniform_fleet

    workload = Workload("scan", GrepApplication(), GrepCostProfile())
    units = list(reshape(text_400k_like(scale=1e-3), None).units)[:6]
    fleets: dict = {}
    for n in (1_000, 10_000, 100_000):
        for traced in (False, True):
            o = obs_mod.configure(metrics=False) if traced else None
            try:
                elapsed = math.inf
                for _ in range(BEST_OF):
                    cloud = Cloud(seed=42)
                    t0 = time.perf_counter()
                    execute_uniform_fleet(cloud, workload, n, units,
                                          deadline=3600.0)
                    elapsed = min(elapsed, time.perf_counter() - t0)
            finally:
                if o is not None:
                    obs_mod.disable()
            key = f"{n}_{'traced' if traced else 'fast'}"
            fleets[key] = {
                "wall_seconds": round(elapsed, 4),
                "instances_per_s": round(n / elapsed, 1),
                "events_fired": cloud.engine.events_fired,
            }

    return {
        "workload": f"{n_storm}-event scheduler storm; columnar uniform "
                    "fleets of 1k/10k/100k instances (tracer off/on)",
        "schedulers": schedulers,
        "fleets": fleets,
        "events_per_s": schedulers["bucket_fast"]["events_per_s"],
        "baseline_events_per_s": 1338.9,
        "speedup_vs_baseline": round(
            schedulers["bucket_fast"]["events_per_s"] / 1338.9, 1),
        "fleet_100k_wall_seconds": fleets["100000_fast"]["wall_seconds"],
    }


def distil(raw: dict) -> dict[str, dict[str, float]]:
    """Reduce a pytest-benchmark dump to ``kernel -> median/ops``."""
    kernels: dict[str, dict[str, float]] = {}
    for b in raw["benchmarks"]:
        median = b["stats"]["median"]
        kernels[b["name"]] = {
            "median_s": round(median, 6),
            "ops_per_s": round(1.0 / median, 3) if median else 0.0,
        }
    return dict(sorted(kernels.items()))


def load_trajectory() -> dict:
    """Load the committed trajectory file, or an empty skeleton."""
    if OUT.exists():
        return json.loads(OUT.read_text())
    return {
        "description": (
            "Median runtimes of the packing/corpus kernels "
            f"({BENCH_FILE}), one entry per packing-engine change. "
            "Regenerate with `make bench-json LABEL=...`."
        ),
        "entries": [],
    }


#: Gate metrics: dotted path into a trajectory entry -> direction.
TRACKED_METRICS = {
    "runner_core.events_per_s": "higher",
    "engine.events_per_s": "higher",
    "engine.fleet_100k_wall_seconds": "lower",
    "dag.events_per_s": "higher",
    "spot.cost_ratio_vs_on_demand": "lower",
    "matrix.cost_ratio_vs_on_demand": "lower",
}

#: Simulated-economics metrics are seed-deterministic: host speed cannot
#: move them, so the calibration ratio must not be applied.
CALIBRATION_EXEMPT = {"spot.cost_ratio_vs_on_demand",
                      "matrix.cost_ratio_vs_on_demand"}


def _tracked_values(entry: dict) -> dict[str, float]:
    """Flatten a trajectory entry to the gate's tracked metric map."""
    out = {}
    for path in TRACKED_METRICS:
        node = entry
        for part in path.split("."):
            node = node.get(part) if isinstance(node, dict) else None
            if node is None:
                break
        if isinstance(node, (int, float)):
            out[path] = float(node)
    return out


def check(warn_only: bool) -> int:
    """``--check``: re-measure the tracked perf headlines and gate them
    against the newest committed trajectory entry.

    Measurements run with a file-backed run ledger installed under
    ``.repro/runs``, so CI can upload the JSONL flight-recorder artifact
    alongside the gate verdict.  Two defences keep the gate about the
    build rather than the machine: measurements are normalised by the
    :func:`host_calibration` ratio against the probe speed recorded in
    the baseline entry (different machines and load regimes become
    comparable), and — since timing noise on a shared host is strictly
    additive, interference makes a run slower, never faster — a failing
    first measurement is re-taken up to ``REPRO_GATE_ATTEMPTS`` times
    (default 3) with each metric keeping its best observation; only a
    regression that survives every attempt fails the gate.  The budget
    defaults to 15% and can be widened/narrowed via
    ``REPRO_GATE_THRESHOLD``; ``--warn-only`` reports violations but
    exits 0 (the pull-request lane), while the default exits 1 on any
    violation (the main-branch lane).
    """
    import os

    sys.path.insert(0, str(REPO / "src"))
    from repro.obs.diff import regression_gate, render_gate_report
    from repro.obs.ledger import RunLedger, set_run_ledger

    entries = load_trajectory()["entries"]
    if not entries:
        print("no committed trajectory entries; gate skipped")
        return 0
    baseline_entry = entries[-1]
    baseline = _tracked_values(baseline_entry)
    cal_base = baseline_entry.get("calibration_ops_per_s")

    def measure() -> dict[str, float]:
        previous = set_run_ledger(RunLedger(REPO / ".repro" / "runs"))
        try:
            values = _tracked_values({
                "runner_core": collect_runner_core_stats(),
                "engine": collect_engine_stats(),
                "dag": collect_dag_stats(),
                "spot": collect_spot_stats(),
                "matrix": collect_matrix_stats(),
            })
        finally:
            set_run_ledger(previous)
        if cal_base:
            # Express this host's numbers in baseline-host units so the
            # budget measures the *build*, not the machine or its load.
            ratio = host_calibration() / cal_base
            print(f"host calibration x{ratio:.2f} vs baseline entry "
                  f"({cal_base:,.0f} ops/s)")
            for path, direction in TRACKED_METRICS.items():
                if path in values and path not in CALIBRATION_EXEMPT:
                    values[path] = (values[path] / ratio
                                    if direction == "higher"
                                    else values[path] * ratio)
        return values

    threshold = float(os.environ.get("REPRO_GATE_THRESHOLD", "0.15"))
    attempts = max(1, int(os.environ.get("REPRO_GATE_ATTEMPTS", "3")))
    current = measure()
    violations = regression_gate(baseline, current, TRACKED_METRICS,
                                 threshold=threshold)
    for retry in range(1, attempts):
        if not violations:
            break
        print(f"attempt {retry}/{attempts}: {len(violations)} violation(s), "
              "re-measuring (best-of-N, noise is one-sided)")
        fresh = measure()
        for path, direction in TRACKED_METRICS.items():
            if path in fresh:
                best = max if direction == "higher" else min
                current[path] = best(current.get(path, fresh[path]),
                                     fresh[path])
        violations = regression_gate(baseline, current, TRACKED_METRICS,
                                     threshold=threshold)
    print(render_gate_report(baseline, current, TRACKED_METRICS, violations,
                             threshold=threshold))
    print(f"(baseline entry: {baseline_entry['label']!r}, "
          f"{baseline_entry['date']})")
    if violations and warn_only:
        print("warn-only mode: regressions reported above, exiting 0")
        return 0
    return 1 if violations else 0


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("raw", nargs="?", help="existing --benchmark-json dump to distil")
    ap.add_argument("--run", action="store_true", help="run the bench suite first")
    ap.add_argument("--label", help="entry label (same label = replace)")
    ap.add_argument("--check", action="store_true",
                    help="regression-gate the tracked perf headlines "
                         "against the newest committed entry")
    ap.add_argument("--warn-only", action="store_true",
                    help="with --check: report regressions but exit 0")
    args = ap.parse_args()

    if args.check:
        raise SystemExit(check(args.warn_only))
    if not args.label:
        ap.error("--label is required (unless --check)")
    if args.run == bool(args.raw):
        ap.error("pass exactly one of --run or a raw JSON path")

    if args.run:
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            raw_path = Path(tmp.name)
        run_benchmarks(raw_path)
    else:
        raw_path = Path(args.raw)

    raw = json.loads(raw_path.read_text())
    entry = {
        "label": args.label,
        "date": date.today().isoformat(),
        "kernels": distil(raw),
        "obs": collect_obs_stats(),
        "fleet": collect_fleet_stats(),
        "chaos": collect_chaos_stats(),
        "spot": collect_spot_stats(),
        "runner_core": collect_runner_core_stats(),
        "engine": collect_engine_stats(),
        "dag": collect_dag_stats(),
        "matrix": collect_matrix_stats(),
        "calibration_ops_per_s": round(host_calibration(), 1),
    }

    trajectory = load_trajectory()
    trajectory["entries"] = [
        e for e in trajectory["entries"] if e["label"] != args.label
    ] + [entry]
    OUT.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"wrote {OUT.relative_to(REPO)} ({len(trajectory['entries'])} entries)")


if __name__ == "__main__":
    main()
