#!/usr/bin/env python
"""One-command reproduction: tests, benchmarks, EXPERIMENTS.md.

Runs the full verification pipeline and leaves the same artefacts the
project's CI would:

* ``test_output.txt``   — the unit/integration/property suite transcript;
* ``bench_output.txt``  — every regenerated paper figure with assertions;
* ``EXPERIMENTS.md``    — the paper-vs-measured comparison table.

Exit status is non-zero if any stage fails.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def run(label: str, cmd: list[str], tee_to: str | None = None) -> int:
    print(f"\n=== {label}: {' '.join(cmd)} ===", flush=True)
    proc = subprocess.run(cmd, cwd=ROOT, capture_output=True, text=True)
    output = proc.stdout + proc.stderr
    if tee_to:
        (ROOT / tee_to).write_text(output, encoding="utf-8")
    # show the tail so progress is visible without drowning the terminal
    tail = "\n".join(output.splitlines()[-12:])
    print(tail)
    if proc.returncode != 0:
        print(f"*** {label} FAILED (exit {proc.returncode})", file=sys.stderr)
    return proc.returncode


def main() -> int:
    status = 0
    status |= run("tests", [sys.executable, "-m", "pytest", "tests/"],
                  tee_to="test_output.txt")
    status |= run("benchmarks",
                  [sys.executable, "-m", "pytest", "benchmarks/",
                   "--benchmark-only"],
                  tee_to="bench_output.txt")
    status |= run("experiments table",
                  [sys.executable, "scripts/generate_experiments_md.py"])
    if status == 0:
        print("\nreproduction complete: test_output.txt, bench_output.txt, "
              "EXPERIMENTS.md")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
