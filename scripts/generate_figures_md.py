#!/usr/bin/env python
"""Render every regenerated figure into docs/FIGURES.md.

A human-skimmable gallery: each paper figure's ASCII rendering, straight
from the same experiment code the benchmarks assert on.  Heavy testbeds
are shared within their group (grep, POS), mirroring the bench fixtures.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import exp_fig1, exp_fig2, exp_grep, exp_pos, exp_side
from repro.report.figures import render_ascii

OUT = Path(__file__).resolve().parent.parent / "docs" / "FIGURES.md"

PAPER_CAPTIONS = {
    "Fig1a": "Fig. 1(a): HTML data set size distribution",
    "Fig1b": "Fig. 1(b): text data set size distribution",
    "Fig2": "Fig. 2: fitted-curve shapes and the provisioning rule",
    "Fig3": "Fig. 3: grep on 1 MB — unstable small probes",
    "Fig4": "Fig. 4: grep on 5 GB — the 10 MB plateau",
    "Fig5": "Fig. 5: fine sampling — repeatable EBS spikes",
    "Fig6": "Fig. 6 + Eqs. (1)-(2): full grep run",
    "Fig7": "Fig. 7: POS vs unit size — original wins",
    "Fig8": "Fig. 8: POS scheduling, D = 1 h",
    "Fig9": "Fig. 9: POS scheduling, D = 2 h",
    "Novels": "§5.2: Dubliners vs Agnes Grey",
    "Switching": "§3.1: slow-instance switching arithmetic",
    "Protocol": "§4: escalating probe protocol",
    "Retrieval": "§1: output-retrieval speedup",
    "Spot": "§1.1: spot bidding trade-off",
    "Approaches": "§4: analytical vs empirical vs historical",
    "Vitality": "§5.2: when random sampling is vital",
}


def main() -> None:
    figs = []
    figs.append(exp_fig1.fig1a()[0])
    figs.append(exp_fig1.fig1b()[0])
    figs.append(exp_fig2.fig2()[0])

    gtb = exp_grep.make_testbed()
    figs.append(exp_grep.fig3()[0])
    figs.append(exp_grep.fig4(gtb)[0])
    figs.append(exp_grep.fig5(gtb)[0])
    figs.append(exp_grep.fig6(gtb)[0])

    ptb = exp_pos.make_testbed()
    figs.append(exp_pos.fig7(ptb)[0])
    figs.append(exp_pos.fig8(ptb)[0])
    figs.append(exp_pos.fig9(ptb)[0])
    figs.append(exp_pos.novels()[0])

    figs.append(exp_side.instance_switching()[0])
    figs.append(exp_side.probe_protocol_trace()[0])
    figs.append(exp_side.output_retrieval()[0])
    figs.append(exp_side.spot_tradeoff()[0])
    figs.append(exp_side.prediction_approaches()[0])
    figs.append(exp_side.sampling_vitality()[0])

    lines = [
        "# Regenerated figures",
        "",
        "Rendered by `python scripts/generate_figures_md.py`; the benchmark",
        "suite asserts the shape claims on exactly these series.",
        "",
    ]
    for fig in figs:
        caption = PAPER_CAPTIONS.get(fig.fig_id, fig.fig_id)
        lines += [f"## {caption}", "", "```text", render_ascii(fig), "```", ""]
    OUT.write_text("\n".join(lines), encoding="utf-8")
    print(f"wrote {OUT} ({len(figs)} figures)")


if __name__ == "__main__":
    main()
