"""End-to-end observability: traced campaigns, engine logs, CLI export."""

import json
import logging

import pytest

from repro import obs as obs_mod
from repro.obs import Obs, bridge_to_tracer, get_logger, get_obs
from repro.sim.engine import SimulationEngine


@pytest.fixture
def enabled_obs():
    """Install an enabled default bundle; always restore the disabled one."""
    o = obs_mod.configure()
    try:
        yield o
    finally:
        obs_mod.disable()


def _mini_campaign(o):
    from repro.apps import PosCostProfile, PosTaggerApplication
    from repro.cloud import Cloud, Workload
    from repro.core.campaign import Campaign
    from repro.corpus import text_400k_like
    from repro.units import MB

    cloud = Cloud(seed=7, obs=o)
    catalogue = text_400k_like(scale=0.002)
    workload = Workload("postag", PosTaggerApplication(), PosCostProfile())
    campaign = Campaign(cloud, workload, catalogue)
    result = campaign.run(deadline=3600.0, initial_volume=4 * MB,
                          unit_sizes_for=lambda v: [1 * MB, 2 * MB],
                          strategy="uniform")
    return cloud, result


class TestDefaultBundle:
    def test_default_starts_disabled(self):
        assert not get_obs().enabled

    def test_configure_installs_and_disable_restores(self):
        o = obs_mod.configure()
        try:
            assert get_obs() is o and o.enabled
        finally:
            obs_mod.disable()
        assert not get_obs().enabled

    def test_obs_on_off_flags(self):
        assert not Obs.off().enabled
        metrics_only = Obs.on(trace=False)
        assert metrics_only.enabled and not metrics_only.tracer.enabled


class TestEngineEventLog:
    def test_schedule_fire_cancel_instants(self, enabled_obs):
        eng = SimulationEngine(tracer=enabled_obs.tracer)
        eng.schedule_at(1.0, lambda: None, label="a")
        ev = eng.schedule_at(2.0, lambda: None, label="b")
        ev.cancel()
        eng.run()
        names = [i.name for i in enabled_obs.tracer.instants]
        assert names == ["sim.engine.schedule", "sim.engine.schedule",
                         "sim.engine.cancel", "sim.engine.fire"]
        cancel = enabled_obs.tracer.instants[2]
        assert cancel.args["label"] == "b"

    def test_run_records_span_on_sim_track(self, enabled_obs):
        eng = SimulationEngine(tracer=enabled_obs.tracer)
        eng.schedule_at(5.0, lambda: None)
        eng.run()
        (run_span,) = enabled_obs.tracer.spans_named("sim.engine.run")
        assert (run_span.t0, run_span.t1) == (0.0, 5.0)
        assert run_span.args["fired"] == 1

    def test_untraced_engine_records_nothing(self, enabled_obs):
        eng = SimulationEngine()
        eng.schedule_at(1.0, lambda: None)
        eng.run()
        assert not any(i.cat == "sim" for i in enabled_obs.tracer.instants)


class TestTracedCampaign:
    def test_campaign_covers_four_plus_categories(self, enabled_obs):
        _mini_campaign(enabled_obs)
        cats = enabled_obs.tracer.categories()
        assert {"sim", "cloud", "packing", "runner"} <= cats

    def test_packing_cache_counters_nonzero(self, enabled_obs):
        _mini_campaign(enabled_obs)
        snap = enabled_obs.metrics.snapshot()["counters"]
        packing = {k: v for k, v in snap.items()
                   if k.startswith("packing.cache.")}
        assert packing and sum(packing.values()) > 0

    def test_lifecycle_and_billing_metrics(self, enabled_obs):
        cloud, result = _mini_campaign(enabled_obs)
        m = enabled_obs.metrics
        assert m.value("cloud.billing.records") > 0
        assert m.value("runner.tasks.completed", strategy="uniform") == \
            len(result.report.runs)
        boot = m.histogram("cloud.instance.boot_seconds")
        assert boot.count > 0

    def test_trace_gantt_renders_runner_rows(self, enabled_obs):
        from repro.report import render_trace_gantt

        _mini_campaign(enabled_obs)
        chart = render_trace_gantt(enabled_obs.tracer, category="runner",
                                   deadline=3600.0)
        assert "spans" in chart and "|" in chart

    def test_trace_gantt_empty_and_narrow(self, enabled_obs):
        from repro.report import render_trace_gantt

        assert render_trace_gantt(enabled_obs.tracer) == "(no spans recorded)"
        with pytest.raises(ValueError):
            render_trace_gantt(enabled_obs.tracer, width=5)


class TestLogBridge:
    def test_records_mirrored_as_instants(self, enabled_obs):
        handler = bridge_to_tracer(enabled_obs.tracer)
        try:
            get_logger("test.bridge").info("hello %s", "trace")
        finally:
            get_logger().removeHandler(handler)
        instants = [i for i in enabled_obs.tracer.instants if i.cat == "log"]
        assert instants and instants[0].name == "log.info"
        assert instants[0].args["message"] == "hello trace"

    def test_bridge_refuses_disabled_tracer(self):
        from repro.obs.trace import Tracer

        assert bridge_to_tracer(Tracer(enabled=False)) is None

    def test_install_is_idempotent(self):
        from repro.obs.log import install

        root = install(logging.INFO)
        n = len(root.handlers)
        install(logging.DEBUG)
        assert len(root.handlers) == n


class TestCliTrace:
    def test_trace_subcommand_exports_and_prints(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        rc = main(["trace", "fault_tolerance",
                   "--out", str(out), "--jsonl", str(jsonl), "--gantt"])
        assert rc == 0
        doc = json.loads(out.read_text())
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert {"sim", "cloud", "runner"} <= cats
        assert doc["otherData"]["spans"] > 0
        assert all(json.loads(line)
                   for line in jsonl.read_text().splitlines())
        printed = capsys.readouterr().out
        assert "== metrics: fault_tolerance ==" in printed
        assert "runner.crashes.detected" in printed
        # the CLI restored the disabled default
        assert not get_obs().enabled

    def test_trace_unknown_demo_fails_cleanly(self):
        from repro.cli import main

        assert main(["trace", "not_a_demo"]) == 2
