"""Tests for the §5.1 device-granular execution path."""

import numpy as np
import pytest

from repro.apps import GrepApplication, GrepCostProfile
from repro.cloud import Cloud, Workload
from repro.core.planner import PlanError
from repro.corpus import html_18mil_like
from repro.perfmodel.regression import fit_affine
from repro.runner.ebs_plan import execute_ebs_plan
from repro.units import GB


def grep_model():
    x = np.array([1e8, 1e9, 1e10])
    return fit_affine(x, 0.2 + 1.33e-8 * x)


def grep_workload():
    return Workload("grep", GrepApplication(), GrepCostProfile())


@pytest.fixture(scope="module")
def run_out():
    cloud = Cloud(seed=91)
    cat = html_18mil_like(scale=1.1e-3)    # ~0.93 GB
    # deadline admitting ~0.25 GB per instance -> several instances
    deadline = float(grep_model().predict(0.25 * GB))
    report, assignments = execute_ebs_plan(
        cloud, grep_workload(), cat, grep_model(), deadline, n_devices=10)
    return cloud, cat, report, assignments


class TestExecuteEbsPlan:
    def test_all_devices_consumed_once(self, run_out):
        _, cat, report, assignments = run_out
        device_ids = [d for a in assignments for d in a.device_ids]
        assert len(device_ids) == len(set(device_ids)) == 10

    def test_volume_conserved(self, run_out):
        _, cat, report, _ = run_out
        assert sum(r.volume for r in report.runs) == cat.total_size

    def test_devices_per_instance_respected(self, run_out):
        _, _, report, assignments = run_out
        sizes = {len(a.device_ids) for a in assignments[:-1]}  # last may be short
        assert len(sizes) <= 1

    def test_placement_factors_recorded(self, run_out):
        _, _, _, assignments = run_out
        factors = [f for a in assignments for f in a.placement_factors]
        assert all(f >= 1.0 for f in factors)

    def test_volumes_detached_after_run(self, run_out):
        cloud, _, _, _ = run_out
        assert all(v.attached_to is None for v in cloud.volumes)

    def test_billing_covers_fleet(self, run_out):
        cloud, _, report, _ = run_out
        assert cloud.ledger.total_instance_hours >= report.n_instances

    def test_too_fine_deadline_rejected(self):
        cloud = Cloud(seed=92)
        cat = html_18mil_like(scale=1.1e-3)
        # deadline admitting less than one device per instance
        tight = float(grep_model().predict(cat.total_size / 50))
        with pytest.raises(PlanError):
            execute_ebs_plan(cloud, grep_workload(), cat, grep_model(),
                             tight, n_devices=10)

    def test_device_count_validation(self):
        cloud = Cloud(seed=93)
        cat = html_18mil_like(scale=1e-4)
        with pytest.raises(PlanError):
            execute_ebs_plan(cloud, grep_workload(), cat, grep_model(),
                             100.0, n_devices=0)
