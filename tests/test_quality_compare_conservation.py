"""Satellite coverage: runner/quality.py, report/compare.py, and the
work-conservation property of every runner-core policy combination.

The conservation law is the core's central invariant: whatever the
acquisition / progress / completion policies do — replace stragglers,
redo crashed batches, fail bins, re-home orphans onto survivors — every
unit of the plan is accounted for exactly once:

    completed units  +  non-absorbed failed-bin units  ==  plan units

(and likewise for bytes).  Hypothesis drives seeds, policy knobs, chaos
and failure models through all five entry points.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    GrepApplication,
    GrepCostProfile,
    PosCostProfile,
    PosTaggerApplication,
)
from repro.capacity import (
    BrokerAcquisition,
    LadderBroker,
    OnDemandBroker,
    ResilientBroker,
    SpotBroker,
    WarmLeaseBroker,
)
from repro.chaos import FaultInjector, get_scenario, get_spot_regime
from repro.cloud import Cloud, FailureModel, Workload
from repro.cloud.bonnie import BONNIE_DURATION
from repro.core import StaticProvisioner, reshape
from repro.corpus import html_18mil_like, text_400k_like
from repro.fleet import LeaseManager
from repro.perfmodel import QualityTracker
from repro.perfmodel.regression import fit_affine
from repro.report.compare import ComparisonRow, ComparisonTable
from repro.resilience import ResilientLauncher
from repro.runner import (
    DynamicPolicy,
    FaultPolicy,
    execute_fault_tolerant,
    execute_on_fleet,
    execute_plan,
    execute_plan_event_driven,
    execute_plan_spot,
    execute_quality_aware,
    execute_with_monitoring,
)


def pos_workload():
    return Workload("postag", PosTaggerApplication(), PosCostProfile())


def make_plan(deadline=30.0, scale=1e-3, strategy="uniform", y_scale=1.0):
    x = np.array([1e5, 1e6, 5e6])
    model = fit_affine(x, y_scale * (0.327 + 0.865e-4 * x))
    cat = text_400k_like(scale=scale)
    return StaticProvisioner(model).plan(
        list(reshape(cat, None).units), deadline, strategy=strategy)


def plan_units(plan):
    return sum(len(b) for b in plan.assignments)


def plan_volume(plan):
    return sum(u.size for b in plan.assignments for u in b)


def assert_work_conserved(plan, report):
    """completed + non-absorbed-failed == planned, in units and bytes."""
    done_units = sum(r.n_units for r in report.runs)
    done_volume = sum(r.volume for r in report.runs)
    lost_units = sum(f.n_units for f in report.failures if not f.absorbed)
    lost_volume = sum(f.volume for f in report.failures if not f.absorbed)
    assert done_units + lost_units == plan_units(plan)
    assert done_volume + lost_volume == plan_volume(plan)


class TestQualityAwareRunner:
    def seeded_tracker(self):
        t = QualityTracker()
        for v in (1e8, 5e8, 1e9):
            t.record("fast", v, v * 1.33e-8)
            t.record("ok", v, v * 1.33e-8 / 0.75)
            t.record("slow", v, v * 1.33e-8 / 0.45)
        return t

    def run(self, seed=5, n=4):
        cloud = Cloud(seed=seed)
        cat = html_18mil_like(scale=5e-4)
        wl = Workload("grep", GrepApplication(), GrepCostProfile())
        report, labels = execute_quality_aware(
            cloud, wl, cat, deadline=120.0, n_instances=n,
            tracker=self.seeded_tracker())
        return cloud, cat, report, labels

    def test_every_file_assigned_exactly_once(self):
        _, cat, report, _ = self.run()
        assert sum(r.n_units for r in report.runs) == len(list(cat))
        assert sum(r.volume for r in report.runs) == cat.total_size

    def test_probe_time_charged_to_every_run(self):
        _, _, report, labels = self.run()
        assert len(labels) == len(report.runs)
        assert all(r.duration >= BONNIE_DURATION for r in report.runs)

    def test_every_instance_billed_once(self):
        cloud, _, report, _ = self.run(n=3)
        billed = [r.instance_id for r in cloud.ledger.records]
        assert sorted(billed) == sorted(r.instance_id for r in report.runs)
        assert len(billed) == 3

    def test_deterministic_across_identical_clouds(self):
        _, _, a, la = self.run(seed=9)
        _, _, b, lb = self.run(seed=9)
        assert la == lb
        assert [r.duration for r in a.runs] == [r.duration for r in b.runs]

    def test_labels_drawn_from_tracker_bands(self):
        _, _, _, labels = self.run()
        assert set(labels) <= {"fast", "ok", "slow"}


class TestComparisonReport:
    def test_row_markdown_cells(self):
        row = ComparisonRow("fig8", "makespan", "40 min", "41 min", True)
        assert row.markdown() == \
            "| fig8 | makespan | 40 min | 41 min | yes |"
        bad = ComparisonRow("fig8", "makespan", "40", "80", False)
        assert bad.markdown().endswith("| NO |")

    def test_add_coerces_and_returns_row(self):
        t = ComparisonTable()
        row = t.add("e1", "cost", 12.5, 13, 1)
        assert row.paper == "12.5" and row.measured == "13"
        assert row.agree is True
        assert t.rows == [row]

    def test_all_agree_and_markdown_table(self):
        t = ComparisonTable()
        t.add("e1", "cost", 1, 1, True)
        t.add("e2", "misses", 0, 3, False)
        assert not t.all_agree
        md = t.markdown().splitlines()
        assert md[0] == "| experiment | quantity | paper | measured | agrees |"
        assert md[1] == "|---|---|---|---|---|"
        assert len(md) == 4

    def test_render_flags_and_alignment(self):
        t = ComparisonTable()
        t.add("e1", "q", "a", "b", True)
        t.add("e2", "longer-quantity", "a", "b", False)
        out = t.render().splitlines()
        assert out[0].startswith("ok ") and out[1].startswith("!! ")
        # quantities pad to the widest one
        assert "q              " in out[0]

    def test_empty_table(self):
        t = ComparisonTable()
        assert t.all_agree
        assert t.render() == ""
        assert t.markdown().count("\n") == 1


class TestWorkConservation:
    """Hypothesis: every policy combination conserves the plan's work."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16),
           strategy=st.sampled_from(["uniform", "first-fit"]),
           chaos=st.sampled_from([None, "capacity-crunch", "flaky-boots",
                                  "kitchen-sink"]),
           resilient=st.booleans())
    def test_static_runner(self, seed, strategy, chaos, resilient):
        plan = make_plan(strategy=strategy)
        cloud = Cloud(seed=seed, chaos=FaultInjector(
            [get_scenario(chaos)], seed=seed) if chaos else None)
        launcher = ResilientLauncher(cloud) if resilient else None
        report = execute_plan(cloud, pos_workload(), plan, launcher=launcher)
        assert_work_conserved(plan, report)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_event_runner(self, seed):
        plan = make_plan()
        report, _ = execute_plan_event_driven(Cloud(seed=seed),
                                              pos_workload(), plan)
        assert_work_conserved(plan, report)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16),
           threshold=st.floats(0.3, 0.95),
           replace_at=st.sampled_from(["immediately", "hour-boundary"]),
           y_scale=st.sampled_from([0.5, 1.0]),
           leased=st.booleans())
    def test_monitored_runner(self, seed, threshold, replace_at, y_scale,
                              leased):
        plan = make_plan(y_scale=y_scale)
        policy = DynamicPolicy(slow_threshold=threshold, replace_at=replace_at)
        cloud = Cloud(seed=seed)
        manager = LeaseManager(cloud) if leased else None
        report, _ = execute_with_monitoring(cloud, pos_workload(), plan,
                                            policy=policy,
                                            lease_manager=manager)
        assert_work_conserved(plan, report)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16),
           mtbf=st.sampled_from([0.002, 0.02, 0.2]),
           batch=st.integers(3, 40),
           max_crashes=st.integers(1, 8),
           leased=st.booleans())
    def test_fault_tolerant_runner(self, seed, mtbf, batch, max_crashes,
                                   leased):
        plan = make_plan(deadline=200.0)
        policy = FaultPolicy(batch_units=batch,
                             max_crashes_per_bin=max_crashes)
        cloud = Cloud(seed=seed, failure_model=FailureModel(mtbf_hours=mtbf))
        manager = LeaseManager(cloud) if leased else None
        report, _ = execute_fault_tolerant(cloud, pos_workload(), plan,
                                           policy=policy,
                                           lease_manager=manager)
        assert_work_conserved(plan, report)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16),
           strategy=st.sampled_from(["uniform", "first-fit"]))
    def test_fleet_runner(self, seed, strategy):
        plan = make_plan(strategy=strategy)
        manager = LeaseManager(Cloud(seed=seed))
        report = execute_on_fleet(manager, pos_workload(), plan)
        assert_work_conserved(plan, report)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16),
           regime=st.sampled_from([None, "calm", "choppy", "eviction-storm"]),
           chaos=st.sampled_from([None, "capacity-crunch"]),
           deadline=st.sampled_from([30.0, 7200.0]))
    def test_spot_runner(self, seed, regime, chaos, deadline):
        """Spot market × interruption regime × launch chaos conserves work."""
        plan = make_plan(deadline=deadline)
        scenarios = []
        if regime is not None:
            scenarios.append(get_spot_regime(regime).scenario(seed))
        if chaos is not None:
            scenarios.append(get_scenario(chaos))
        cloud = Cloud(seed=seed, chaos=FaultInjector(scenarios, seed=seed)
                      if scenarios else None)
        result = execute_plan_spot(cloud, pos_workload(), plan)
        assert_work_conserved(plan, result.report)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**16),
           chaos=st.sampled_from(["capacity-crunch", "kitchen-sink"]))
    def test_degradation_replan_absorbs_rather_than_loses(self, seed, chaos):
        """Absorbed failures re-home units into survivors' runs."""
        from repro.resilience import DegradationPlanner

        plan = make_plan()
        cloud = Cloud(seed=seed,
                      chaos=FaultInjector([get_scenario(chaos)], seed=seed))
        launcher = ResilientLauncher(cloud, degradation=DegradationPlanner())
        report = execute_plan(cloud, pos_workload(), plan, launcher=launcher)
        assert_work_conserved(plan, report)
        for f in report.failures:
            if f.absorbed:
                # its units are inside the survivors' totals already
                assert sum(r.n_units for r in report.runs) == plan_units(plan)


class TestBrokerStackConservation:
    """Hypothesis: hand-composed broker stacks conserve the plan's work.

    The entry-point runners above exercise the canonical stacks; these
    cases wire BrokerAcquisition directly with ladders and decorators the
    runners never build, under chaos, and check the same invariant.
    """

    def _core(self, cloud, plan, acquisition, completion):
        from repro.runner.core import ExecutionCore, RunToCompletion

        return ExecutionCore(cloud, pos_workload(), plan,
                             acquisition=acquisition,
                             progress=RunToCompletion(),
                             completion=completion,
                             label="broker-stack")

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16),
           chaos=st.sampled_from([None, "capacity-crunch", "flaky-boots",
                                  "kitchen-sink"]),
           stack=st.sampled_from(["on-demand", "resilient",
                                  "resilient-ladder"]))
    def test_fleet_stacks(self, seed, chaos, stack):
        from repro.runner.core import StaticCompletion

        plan = make_plan()
        cloud = Cloud(seed=seed, chaos=FaultInjector(
            [get_scenario(chaos)], seed=seed) if chaos else None)
        if stack == "on-demand":
            broker = OnDemandBroker()
        elif stack == "resilient":
            broker = ResilientBroker(ResilientLauncher(cloud))
        else:
            broker = LadderBroker([ResilientBroker(ResilientLauncher(cloud)),
                                   OnDemandBroker()])
        core = self._core(cloud, plan,
                          BrokerAcquisition(broker),
                          StaticCompletion())
        assert_work_conserved(plan, core.run().report)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16),
           strategy=st.sampled_from(["uniform", "first-fit"]))
    def test_warm_lease_stack(self, seed, strategy):
        from repro.runner.core import LeaseCompletion

        plan = make_plan(strategy=strategy)
        cloud = Cloud(seed=seed)
        manager = LeaseManager(cloud)
        acq = BrokerAcquisition(WarmLeaseBroker(manager, tenant="stack"),
                                lazy=True, lease_manager=manager,
                                replacement_tenant="stack")
        core = self._core(cloud, plan, acq, LeaseCompletion(manager))
        report = core.run().report
        assert_work_conserved(plan, report)
        manager.shutdown()
        # every paid instance-hour in the ledger, none double-billed
        assert len(cloud.ledger.records) >= 1

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16),
           regime=st.sampled_from([None, "choppy", "eviction-storm"]),
           deadline=st.sampled_from([30.0, 7200.0]))
    def test_spot_ladder_stack(self, seed, regime, deadline):
        from repro.cloud.spot import SpotMarketBoard
        from repro.resilience import SpotFallbackPolicy, SpotLadder
        from repro.runner.core import ExecutionCore
        from repro.runner.spot import SpotCompletion, SpotProgress, SpotRunStats

        plan = make_plan(deadline=deadline)
        cloud = Cloud(seed=seed, chaos=FaultInjector(
            [get_spot_regime(regime).scenario(seed)], seed=seed)
            if regime else None)
        board = SpotMarketBoard.for_cloud(cloud)
        ladder = SpotLadder(board, policy=SpotFallbackPolicy(),
                            chaos=cloud.chaos)
        stats = SpotRunStats()
        broker = LadderBroker([SpotBroker(board, ladder, stats=stats),
                               OnDemandBroker()])
        acq = BrokerAcquisition(broker, replacement_tenant="spot")
        core = ExecutionCore(cloud, pos_workload(), plan,
                             acquisition=acq,
                             progress=SpotProgress(board, ladder,
                                                   acquisition=acq,
                                                   chaos=cloud.chaos,
                                                   stats=stats),
                             completion=SpotCompletion(stats=stats),
                             label="spot-ladder-stack",
                             record_kind="spot")
        assert_work_conserved(plan, core.run().report)
