"""Acceptance tests for the DAG backend-comparison sweep and its CLI."""

import pytest

from repro.cli import main as cli_main
from repro.experiments.exp_dag import dag_sweep, evaluate_dag_slos, run_cell


class TestRunCell:
    def test_repeat_run_equality(self):
        a = run_cell("s3", "fanout", seed=11)
        b = run_cell("s3", "fanout", seed=11)
        assert a == b

    def test_compute_identical_across_backends(self):
        # The RNG-fork convention: only the transfers may differ.
        cells = [run_cell(b, "linear", seed=11) for b in ("local", "s3",
                                                          "ebs")]
        assert len({c["compute_usd"] for c in cells}) == 1
        assert cells[0]["transfer_usd"] < cells[1]["transfer_usd"]

    def test_unknown_backend_and_shape_raise(self):
        with pytest.raises(ValueError):
            run_cell("floppy", "linear")
        with pytest.raises(ValueError):
            run_cell("local", "pentagon")


class TestSweepAcceptance:
    @pytest.fixture(scope="class")
    def sweep(self):
        fig, stats = dag_sweep()
        return fig, stats

    @pytest.mark.chaos
    def test_slo_holds_for_every_backend(self, sweep):
        _, stats = sweep
        reports = evaluate_dag_slos(stats)
        assert set(reports) == {"local", "s3", "ebs"}
        for backend, report in reports.items():
            assert report.ok, backend

    @pytest.mark.chaos
    def test_concurrent_beats_serial_on_every_backend(self, sweep):
        _, stats = sweep
        for backend, ratio in stats["speedup"].items():
            assert ratio > 1.0, backend

    @pytest.mark.chaos
    def test_backend_choice_moves_cost_and_makespan(self, sweep):
        _, stats = sweep
        agg = stats["agg"]
        # local disk is free; S3 pays request+storage and its per-object
        # latency dominates the makespan spread (the Juve et al. finding)
        for shape in ("linear", "fanout"):
            assert agg["local"][shape]["mean_total_usd"] < \
                agg["s3"][shape]["mean_total_usd"]
            assert agg["local"][shape]["mean_makespan_s"] < \
                agg["s3"][shape]["mean_makespan_s"]
            assert agg["ebs"][shape]["mean_transfer_s"] < \
                agg["s3"][shape]["mean_transfer_s"]

    @pytest.mark.chaos
    def test_figure_carries_both_axes(self, sweep):
        fig, _ = sweep
        names = {s.label for s in fig.series}
        assert "makespan s [linear]" in names
        assert "total USD [fanout]" in names


class TestDagCli:
    def test_single_cell_sweep_runs(self, capsys):
        assert cli_main(["dag", "--backend", "local", "--shape", "fanout",
                         "--seeds", "1", "--slo", "--no-ledger"]) == 0
        out = capsys.readouterr().out
        assert "local" in out and "backend=local" in out

    def test_unknown_backend_is_one_line_error(self, caplog):
        assert cli_main(["dag", "--backend", "floppy",
                         "--no-ledger"]) == 2
        messages = [r.getMessage() for r in caplog.records]
        assert any("unknown backend" in m for m in messages)

    def test_zero_seeds_rejected(self):
        assert cli_main(["dag", "--seeds", "0", "--no-ledger"]) == 2
