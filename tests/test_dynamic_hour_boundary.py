"""Tests for the hour-boundary straggler-replacement variant (§7)."""

import numpy as np
import pytest

from repro.apps import PosCostProfile, PosTaggerApplication
from repro.cloud import Cloud, Workload
from repro.core import StaticProvisioner, reshape
from repro.corpus import text_400k_like
from repro.perfmodel.regression import fit_affine
from repro.runner import DynamicPolicy, execute_with_monitoring


def pos_workload():
    return Workload("postag", PosTaggerApplication(), PosCostProfile())


def make_plan(scale=5e-2, deadline=500.0):
    x = np.array([1e5, 1e6, 5e6])
    model = fit_affine(x, 0.327 + 0.865e-4 * x)
    cat = text_400k_like(scale=scale)
    return StaticProvisioner(model).plan(
        list(reshape(cat, None).units), deadline, strategy="uniform")


class Scripted:
    """First 2n quality draws slow, later draws (replacements) fast."""

    def __init__(self, n_slow, slow=0.35):
        self.remaining = n_slow
        self.slow = slow

    def draw_factor(self, rng):
        if self.remaining > 0:
            self.remaining -= 1
            return self.slow
        return 1.0


class TestHourBoundaryPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DynamicPolicy(replace_at="later")

    def run_both(self, plan, seed=3):
        n = plan.n_instances
        wl = pos_workload()
        imm, ev_i = execute_with_monitoring(
            Cloud(seed=seed, heterogeneity=Scripted(2 * n)), wl, plan,
            policy=DynamicPolicy(slow_threshold=0.7, replace_at="immediately"))
        hb, ev_h = execute_with_monitoring(
            Cloud(seed=seed, heterogeneity=Scripted(2 * n)), wl, plan,
            policy=DynamicPolicy(slow_threshold=0.7, replace_at="hour-boundary"))
        return imm, ev_i, hb, ev_h

    def test_both_policies_replace_stragglers(self):
        plan = make_plan()
        imm, ev_i, hb, ev_h = self.run_both(plan)
        assert len(ev_i) >= 1 and len(ev_h) >= 1

    def test_hour_boundary_progresses_further_before_handover(self):
        """The extra paid-hour window does real work, so the handover
        happens at strictly more progress."""
        plan = make_plan()
        _, ev_i, _, ev_h = self.run_both(plan)
        prog_i = {e.bin_index: e.at_progress for e in ev_i}
        prog_h = {e.bin_index: e.at_progress for e in ev_h}
        common = set(prog_i) & set(prog_h)
        assert common
        assert all(prog_h[b] > prog_i[b] for b in common)

    def test_volume_conserved_under_both(self):
        plan = make_plan()
        imm, _, hb, _ = self.run_both(plan)
        assert sum(r.volume for r in imm.runs) == plan.total_volume
        assert sum(r.volume for r in hb.runs) == plan.total_volume

    def test_replacement_billed_only_for_its_own_span(self):
        """Billing fix: the replacement's ledger record must not cover the
        straggler's window."""
        plan = make_plan()
        n = plan.n_instances
        cloud = Cloud(seed=3, heterogeneity=Scripted(2 * n))
        report, events = execute_with_monitoring(
            cloud, pos_workload(), plan,
            policy=DynamicPolicy(slow_threshold=0.7))
        assert events
        replaced = {e.new_instance for e in events}
        by_instance = {}
        for rec in cloud.ledger.records:
            by_instance.setdefault(rec.instance_id, []).append(rec)
        for run in report.runs:
            if run.instance_id in replaced:
                rec = by_instance[run.instance_id][0]
                # the replacement record is strictly shorter than the
                # bin's total wall time
                assert rec.duration < run.duration

    def test_total_ledger_covers_every_working_span_once(self):
        plan = make_plan()
        n = plan.n_instances
        cloud = Cloud(seed=3, heterogeneity=Scripted(2 * n))
        report, events = execute_with_monitoring(
            cloud, pos_workload(), plan, policy=DynamicPolicy(slow_threshold=0.7))
        # per replaced bin: straggler span + penalty + replacement span ==
        # the run's duration
        penalties = DynamicPolicy().replacement_penalty
        for e in events:
            spans = [r.duration for r in cloud.ledger.records
                     if r.instance_id in (e.old_instance, e.new_instance)]
            run = next(r for r in report.runs if r.instance_id == e.new_instance)
            assert sum(spans) + penalties == pytest.approx(run.duration, rel=1e-9)
