"""Tests for the execution service, bonnie vetting and the spot market."""

import numpy as np
import pytest

from repro.apps import GrepApplication, GrepCostProfile, PosCostProfile, PosTaggerApplication
from repro.cloud import Cloud, ExecutionService, Workload, acquire_good_instance, bonnie_probe
from repro.cloud.bonnie import AcquisitionError, BONNIE_DURATION
from repro.cloud.instance import HeterogeneityModel
from repro.cloud.spot import SpotMarket, SpotRequest
from repro.corpus import text_400k_like
from repro.sim.random import RngStream
from repro.units import MB


def grep_workload():
    return Workload("grep", GrepApplication(), GrepCostProfile())


def pos_workload():
    return Workload("postag", PosTaggerApplication(), PosCostProfile())


@pytest.fixture()
def cloud():
    return Cloud(seed=42)


@pytest.fixture()
def units():
    return list(text_400k_like(scale=2e-4))[:40]


class TestExecutionService:
    def test_run_returns_positive_time_and_advances_clock(self, cloud, units):
        inst = cloud.launch_instance()
        svc = ExecutionService(cloud)
        t0 = cloud.now
        t = svc.run(inst, units, pos_workload())
        assert t > 0
        assert cloud.now == pytest.approx(t0 + t)

    def test_run_deterministic_across_clouds(self, units):
        def measure(seed):
            cloud = Cloud(seed=seed)
            inst = cloud.launch_instance()
            return ExecutionService(cloud).run(inst, units, grep_workload())

        assert measure(5) == measure(5)
        assert measure(5) != measure(6)

    def test_repeated_runs_differ_by_noise_only(self, cloud, units):
        inst = cloud.launch_instance()
        svc = ExecutionService(cloud, noise_sigma=0.01)
        times = [svc.run(inst, units, pos_workload()) for _ in range(5)]
        assert np.std(times) / np.mean(times) < 0.2
        assert len(set(times)) == 5  # but they do differ

    def test_slow_instance_measures_slower(self, units):
        """Hidden heterogeneity is observable through measured times."""
        hmodel = HeterogeneityModel(p_slow=0.0, p_very_slow=0.0)
        fast_cloud = Cloud(seed=1, heterogeneity=hmodel)
        fast = fast_cloud.launch_instance()
        t_fast = ExecutionService(fast_cloud, noise_sigma=0.0).run(fast, units, pos_workload())

        slow_cloud = Cloud(seed=1, heterogeneity=hmodel)
        slow = slow_cloud.launch_instance()
        slow.cpu_factor = 0.3  # force a straggler
        t_slow = ExecutionService(slow_cloud, noise_sigma=0.0).run(slow, units, pos_workload())
        assert t_slow > 2.0 * t_fast

    def test_storage_placement_scales_io(self, cloud, units):
        inst = cloud.launch_instance()
        vol = cloud.create_volume(100, zone=inst.zone)
        vol.attach(inst)
        vol.store("good")
        vol._directories["good"] = 1.0
        vol.store("bad")
        vol._directories["bad"] = 3.0
        svc = ExecutionService(cloud, noise_sigma=0.0)
        t_good = svc.run(inst, units, grep_workload(), storage=vol, directory="good")
        t_bad = svc.run(inst, units, grep_workload(), storage=vol, directory="bad")
        assert t_bad > t_good  # grep is I/O-dominated

    def test_unattached_storage_rejected(self, cloud, units):
        inst = cloud.launch_instance()
        vol = cloud.create_volume(10, zone=inst.zone)
        vol.store("d")
        with pytest.raises(ValueError):
            ExecutionService(cloud).run(inst, units, grep_workload(), storage=vol, directory="d")

    def test_terminated_instance_rejected(self, cloud, units):
        inst = cloud.launch_instance()
        cloud.terminate_instance(inst)
        from repro.cloud.instance import InstanceError

        with pytest.raises(InstanceError):
            ExecutionService(cloud).run(inst, units, grep_workload())

    def test_negative_noise_rejected(self, cloud):
        with pytest.raises(ValueError):
            ExecutionService(cloud, noise_sigma=-0.1)


class TestBonnie:
    def test_probe_reflects_io_factor(self, cloud):
        inst = cloud.launch_instance()
        inst.io_factor = 0.5
        res = bonnie_probe(cloud, inst)
        expected = inst.itype.base_disk_bandwidth * 0.5
        assert res.block_read == pytest.approx(expected, rel=0.15)

    def test_probe_advances_clock(self, cloud):
        inst = cloud.launch_instance()
        t0 = cloud.now
        bonnie_probe(cloud, inst)
        assert cloud.now == t0 + BONNIE_DURATION

    def test_threshold(self):
        from repro.cloud.bonnie import BonnieResult

        good = BonnieResult(block_read=70 * MB, block_write=65 * MB)
        bad = BonnieResult(block_read=50 * MB, block_write=65 * MB)
        assert good.passes() and not bad.passes()

    def test_acquire_returns_good_instance(self):
        cloud = Cloud(seed=10)
        inst, attempts = acquire_good_instance(cloud)
        assert inst.io_factor > 0.7
        assert attempts >= 1
        # rejected instances were terminated and billed
        assert len(cloud.ledger.records) == attempts - 1

    def test_acquire_rejects_stragglers(self):
        """With a mostly-bad cloud, acquisition takes several attempts."""
        hmodel = HeterogeneityModel(p_slow=0.6, p_very_slow=0.3)
        cloud = Cloud(seed=3, heterogeneity=hmodel)
        inst, attempts = acquire_good_instance(cloud, max_attempts=100)
        assert attempts > 1
        assert inst.io_factor > 0.7

    def test_acquire_gives_up(self):
        hmodel = HeterogeneityModel(p_slow=0.0, p_very_slow=1.0)
        cloud = Cloud(seed=3, heterogeneity=hmodel)
        with pytest.raises(AcquisitionError):
            acquire_good_instance(cloud, max_attempts=5)

    def test_bad_repeats(self, cloud):
        with pytest.raises(ValueError):
            acquire_good_instance(cloud, repeats=0)


class TestSpotMarket:
    def test_prices_deterministic_and_floored(self):
        m1 = SpotMarket(rng=RngStream(8))
        m2 = SpotMarket(rng=RngStream(8))
        assert m1.prices(50) == m2.prices(50)
        assert all(p >= m1.floor for p in m1.prices(50))

    def test_price_negative_hour_rejected(self):
        with pytest.raises(ValueError):
            SpotMarket(rng=RngStream(1)).price(-1)

    def test_high_bid_always_runs(self):
        m = SpotMarket(rng=RngStream(2))
        req = SpotRequest(bid=10.0)
        assert req.active_hours(m, 24) == list(range(24))

    def test_low_bid_interrupted(self):
        m = SpotMarket(rng=RngStream(2), volatility=0.02)
        req = SpotRequest(bid=m.mean_price * 0.9)
        active = req.active_hours(m, 200)
        assert 0 < len(active) < 200

    def test_progress_completes_with_enough_capacity(self):
        m = SpotMarket(rng=RngStream(4))
        out = SpotRequest(bid=1.0).simulate_progress(m, horizon_hours=10, work_hours=5)
        assert out["done"] and out["completed_hour"] == 5
        assert out["cost"] == pytest.approx(sum(m.prices(5)))

    def test_progress_cheaper_than_ondemand_but_slower(self):
        """The §1.1 trade-off: spot saves money when time matters less."""
        m = SpotMarket(rng=RngStream(9), volatility=0.02)
        bid = m.mean_price * 1.02
        out = SpotRequest(bid=bid).simulate_progress(m, horizon_hours=500, work_hours=20)
        assert out["done"]
        on_demand_cost = 20 * 0.085
        assert out["cost"] < on_demand_cost
        assert out["completed_hour"] >= 20

    def test_bad_bid(self):
        with pytest.raises(ValueError):
            SpotRequest(bid=0.0)
