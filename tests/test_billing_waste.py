"""Mid-hour termination accounting: the paid-but-unused remainder.

The §1.1 pricing fact is ``cost = r·⌈P⌉``; these tests pin the charge at
exact hour boundaries and make the thrown-away remainder
(``wasted_seconds``) visible — the quantity the fleet's warm pool exists
to recycle.
"""

import pytest

from repro.cloud import Cloud
from repro.cloud.billing import BillingLedger, UsageRecord
from repro.cloud.instance import InstanceError


class TestWastedSeconds:
    def test_exact_boundary_wastes_nothing(self):
        rec = UsageRecord("i-1", "m1.small", 0.0, 3600.0, 0.085)
        assert rec.hours == 1
        assert rec.wasted_seconds == 0.0

    def test_two_exact_hours_waste_nothing(self):
        rec = UsageRecord("i-1", "m1.small", 100.0, 100.0 + 7200.0, 0.085)
        assert rec.hours == 2
        assert rec.wasted_seconds == 0.0

    def test_one_second_past_boundary_buys_a_full_new_hour(self):
        rec = UsageRecord("i-1", "m1.small", 0.0, 3601.0, 0.085)
        assert rec.hours == 2
        assert rec.wasted_seconds == pytest.approx(3599.0)

    def test_mid_hour_termination_remainder(self):
        rec = UsageRecord("i-1", "m1.small", 0.0, 1800.0, 0.085)
        assert rec.hours == 1
        assert rec.wasted_seconds == pytest.approx(1800.0)

    def test_ledger_totals_and_summary(self):
        led = BillingLedger()
        led.record("i-1", "m1.small", 0.0, 1800.0, 0.085)   # wastes 1800
        led.record("i-2", "m1.small", 0.0, 3600.0, 0.085)   # wastes 0
        assert led.total_wasted_seconds == pytest.approx(1800.0)
        assert led.summary()["wasted_seconds"] == pytest.approx(1800.0)


class TestLeaseAwareTerminate:
    def test_terminate_returns_usage_record(self):
        cloud = Cloud(seed=1)
        inst = cloud.launch_instance()
        cloud.advance(1000.0)
        rec = cloud.terminate_instance(inst)
        assert rec is not None
        assert rec.duration == pytest.approx(1000.0)
        assert rec.wasted_seconds == pytest.approx(2600.0)

    def test_retroactive_terminate_bills_to_at(self):
        cloud = Cloud(seed=1)
        inst = cloud.launch_instance()
        stop = cloud.now + 600.0
        cloud.advance(5000.0)  # clock runs on while the instance idles
        rec = cloud.terminate_instance(inst, at=stop)
        assert rec.end == pytest.approx(stop)
        assert rec.hours == 1  # idle seconds past the lease are not billed

    def test_future_terminate_rejected(self):
        cloud = Cloud(seed=1)
        inst = cloud.launch_instance()
        with pytest.raises(InstanceError):
            cloud.terminate_instance(inst, at=cloud.now + 10.0)

    def test_paid_through_and_remaining(self):
        cloud = Cloud(seed=1)
        inst = cloud.launch_instance()
        start = inst.running_since
        # the first hour is committed the moment the instance runs
        assert cloud.paid_through(inst) == pytest.approx(start + 3600.0)
        assert cloud.remaining_paid_seconds(inst) == pytest.approx(3600.0)
        cloud.advance(3600.0)
        # exactly on the boundary: nothing of the paid hour remains
        assert cloud.remaining_paid_seconds(inst) == pytest.approx(0.0)
        cloud.advance(1.0)
        # one second into hour two: a fresh hour is committed
        assert cloud.remaining_paid_seconds(inst) == pytest.approx(3599.0)

    def test_paid_through_requires_running(self):
        cloud = Cloud(seed=1)
        inst = cloud.launch_instance(wait=False)
        with pytest.raises(InstanceError):
            cloud.paid_through(inst)
