"""Tests for the §7 extensions: weighted fits and quality tracking."""

import numpy as np
import pytest

from repro.cloud.bonnie import BonnieResult
from repro.perfmodel import (
    Measurement,
    QualityTracker,
    variance_weighted_fit,
    volume_weighted_fit,
)
from repro.perfmodel.quality import QualityError
from repro.perfmodel.regression import FitError
from repro.units import MB


def noisy_line(seed=0, noise_small=0.5, noise_large=0.02, n=24):
    """y = 2 + 1e-4 x with loud noise at small volumes, quiet at large."""
    rng = np.random.default_rng(seed)
    x = np.logspace(4, 8, n)
    rel = noise_small + (noise_large - noise_small) * (np.log(x) - np.log(x[0])) / (
        np.log(x[-1]) - np.log(x[0]))
    y = (2.0 + 1e-4 * x) * (1 + rng.normal(0, 1, n) * rel / 2)
    return x, np.maximum(y, 1e-3)


class TestVolumeWeightedFit:
    def test_weighted_sse_invariant(self):
        """The weighted fit minimises weighted SSE by construction — it can
        never do worse than the unweighted fit under its own metric (and
        vice versa)."""
        from repro.perfmodel.regression import fit_affine

        x, y = noisy_line(seed=1)
        w = (x / x.max()) ** 2.0
        fit_w = volume_weighted_fit(x, y, power=2.0)
        fit_u = fit_affine(x, y)
        wsse = lambda m: float(np.sum(w * (y - m.predict(x)) ** 2))
        usse = lambda m: float(np.sum((y - m.predict(x)) ** 2))
        assert wsse(fit_w) <= wsse(fit_u) + 1e-9
        assert usse(fit_u) <= usse(fit_w) + 1e-9

    def test_tracks_large_volumes_more_closely(self):
        """§7's stated goal: closer fits in the large-volume range."""
        from repro.perfmodel.regression import fit_affine

        for seed in range(10):
            x, y = noisy_line(seed=seed, noise_small=1.2, noise_large=0.01)
            fit_w = volume_weighted_fit(x, y, power=3.0)
            fit_u = fit_affine(x, y)
            res_w = abs(float(y[-1]) - fit_w.predict(float(x[-1])))
            res_u = abs(float(y[-1]) - fit_u.predict(float(x[-1])))
            assert res_w <= res_u

    def test_power_zero_equals_unweighted(self):
        from repro.perfmodel.regression import fit_affine

        x, y = noisy_line(seed=3)
        w = volume_weighted_fit(x, y, power=0.0)
        u = fit_affine(x, y)
        assert w.b == pytest.approx(u.b)

    def test_validation(self):
        with pytest.raises(FitError):
            volume_weighted_fit([1.0, 2.0], [1.0, 2.0], power=-1)
        with pytest.raises(FitError):
            volume_weighted_fit([0.0, 2.0], [1.0, 2.0])


class TestVarianceWeightedFit:
    def test_quiet_points_dominate(self):
        # two precise large-volume measurements, one wild small one
        pts = [
            (1e4, Measurement(values=(50.0, 0.5, 10.0))),       # garbage
            (1e6, Measurement(values=(102.0, 102.2, 101.8))),
            (2e6, Measurement(values=(202.0, 202.3, 201.7))),
        ]
        model = variance_weighted_fit(pts)
        assert model.b == pytest.approx(1e-4, rel=0.05)

    def test_needs_two_points(self):
        with pytest.raises(FitError):
            variance_weighted_fit([(1.0, Measurement(values=(1.0,)))])


def bonnie(read_mb: float) -> BonnieResult:
    return BonnieResult(block_read=read_mb * MB, block_write=read_mb * MB)


class TestQualityTracker:
    def test_classification_bands(self):
        t = QualityTracker()
        assert t.classify(bonnie(90)) == "fast"
        assert t.classify(bonnie(60)) == "ok"
        assert t.classify(bonnie(30)) == "slow"

    def test_likelihoods(self):
        t = QualityTracker()
        for r in (90, 95, 60, 30):
            t.classify(bonnie(r))
        assert t.likelihood("fast") == pytest.approx(0.5)
        assert t.likelihood("slow") == pytest.approx(0.25)

    def test_likelihood_requires_data(self):
        with pytest.raises(QualityError):
            QualityTracker().likelihood("fast")

    def test_band_validation(self):
        with pytest.raises(QualityError):
            QualityTracker(bands={})
        with pytest.raises(QualityError):
            QualityTracker(bands={"fast": 10.0})  # no catch-all

    def test_per_band_predictors_differ(self):
        t = QualityTracker()
        for v in (1e6, 2e6, 4e6):
            t.record("fast", v, 1e-4 * v)          # fast: 1e-4 s/B
            t.record("slow", v, 3e-4 * v)          # slow: 3x slower
        assert t.predictor_for("slow").b == pytest.approx(3e-4, rel=1e-6)
        assert t.volume_for("fast", 100.0) == pytest.approx(3 * t.volume_for("slow", 100.0), rel=0.01)

    def test_sparse_band_falls_back_to_pooled(self):
        t = QualityTracker()
        t.record("fast", 1e6, 100.0)
        t.record("fast", 2e6, 200.0)
        # "ok" has no data of its own -> pooled fit succeeds
        assert t.predictor_for("ok").b > 0

    def test_no_data_at_all(self):
        with pytest.raises(FitError):
            QualityTracker().predictor_for("fast")

    def test_record_validation(self):
        t = QualityTracker()
        with pytest.raises(QualityError):
            t.record("nope", 1.0, 1.0)
        with pytest.raises(QualityError):
            t.record("fast", 0.0, 1.0)

    def test_share_out_proportional_and_exact(self):
        t = QualityTracker()
        for v in (1e6, 2e6):
            t.record("fast", v, 1e-4 * v)
            t.record("slow", v, 2e-4 * v)
        shares = t.share_out(["fast", "slow"], 3_000_000, deadline=100.0)
        assert sum(shares) == 3_000_000
        assert shares[0] == pytest.approx(2 * shares[1], rel=0.01)

    def test_share_out_empty_fleet(self):
        with pytest.raises(QualityError):
            QualityTracker().share_out([], 100, 10.0)
