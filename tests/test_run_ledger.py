"""Tests for the flight recorder: RunRecord, RunLedger, and emission sites."""

import json

import numpy as np
import pytest

from repro.obs import MetricsRegistry, configure, disable
from repro.obs.ledger import (
    LedgerError,
    RunLedger,
    RunRecord,
    capture_runs,
    configure_run_ledger,
    decode_metrics_dump,
    encode_metrics_dump,
    get_run_ledger,
    record_experiment,
    set_run_ledger,
)


def _registry_with_everything() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("a.count", side="x").inc(3)
    reg.gauge("a.level").set(-2.5)
    reg.histogram("a.lat", buckets=(0.1, 1.0)).observe(0.05)
    reg.histogram("a.lat", buckets=(0.1, 1.0)).observe(7.25)
    reg.histogram("a.empty", buckets=(1.0,))   # inf sentinels survive JSON
    return reg


class TestDumpCodec:
    def test_round_trip_is_identical(self):
        rows = _registry_with_everything().dump()
        back = decode_metrics_dump(
            json.loads(json.dumps(encode_metrics_dump(rows))))
        assert back == rows

    def test_decoded_rows_merge_into_fresh_registry(self):
        rows = _registry_with_everything().dump()
        reg = MetricsRegistry()
        reg.merge_dump(decode_metrics_dump(
            json.loads(json.dumps(encode_metrics_dump(rows)))))
        assert reg.dump() == rows

    def test_numpy_label_values_become_plain(self):
        reg = MetricsRegistry()
        reg.counter("a.b", n=np.int64(3)).inc()
        enc = encode_metrics_dump(reg.dump())
        assert json.dumps(enc)   # must be JSON-clean
        assert enc[0][1] == [["n", 3]]


class TestRunRecord:
    def test_to_from_dict_round_trip(self):
        rec = RunRecord(
            kind="runner", label="execute_plan",
            config={"seed": 7, "strategy": "uniform"},
            metrics=encode_metrics_dump(_registry_with_everything().dump()),
            spans={"runner.execute": {"count": 2, "total_s": 0.5}},
            billing={"cost_usd": 1.25}, deadline={"missed": 0, "bins": 4},
            profile={"wall_s": 0.01}, extra={"note": "hi"},
        )
        back = RunRecord.from_dict(json.loads(json.dumps(rec.to_dict())))
        assert back.to_dict() == rec.to_dict()
        assert back.metric_rows() == _registry_with_everything().dump()

    def test_get_dotted_path_and_default(self):
        rec = RunRecord(kind="runner", label="x",
                        billing={"cost_usd": 1.5},
                        profile={"phases": {"execute": {"wall_s": 2.0}}})
        assert rec.get("billing.cost_usd") == 1.5
        assert rec.get("profile.phases.execute.wall_s") == 2.0
        assert rec.get("billing.nope", -1) == -1

    def test_metric_value_reads_series(self):
        rec = RunRecord(kind="runner", label="x",
                        metrics=encode_metrics_dump(
                            _registry_with_everything().dump()))
        assert rec.metric_value("a.count", side="x") == 3.0
        assert rec.metric_value("a.count", side="other") == 0.0

    def test_from_dict_missing_kind_raises(self):
        with pytest.raises(LedgerError):
            RunRecord.from_dict({"label": "x"})


class TestRunLedger:
    def test_file_backed_append_and_read(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        ledger.append(RunRecord(kind="runner", label="execute_plan"))
        ledger.append(RunRecord(kind="columnar", label="fleet"))
        assert (tmp_path / "runs" / "ledger.jsonl").exists()
        # A second instance over the same root sees both lines.
        again = RunLedger(tmp_path / "runs")
        ids = [r.run_id for r in again.records()]
        assert ids == ["execute_plan-0001", "fleet-0002"]
        assert [r.kind for r in again.records(kind="columnar")] == ["columnar"]

    def test_in_memory_ledger_never_touches_disk(self, tmp_path):
        ledger = RunLedger(None)
        ledger.append(RunRecord(kind="runner", label="a"))
        assert ledger.path is None
        assert len(ledger) == 1

    def test_resolve_by_id_and_negative_index(self, tmp_path):
        ledger = RunLedger(tmp_path)
        for label in ("a", "b", "c"):
            ledger.append(RunRecord(kind="runner", label=label))
        assert ledger.resolve("b-0002").label == "b"
        assert ledger.resolve("-1").label == "c"
        assert ledger.resolve("-3").label == "a"
        with pytest.raises(LedgerError):
            ledger.resolve("nope")
        with pytest.raises(LedgerError):
            ledger.resolve("-9")

    def test_resolve_empty_ledger_raises(self, tmp_path):
        with pytest.raises(LedgerError, match="empty"):
            RunLedger(tmp_path).resolve("-1")

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"kind": "runner", "label": "ok"}\nnot json\n')
        with pytest.raises(LedgerError, match="2"):
            RunLedger(tmp_path).records()

    def test_append_preserves_existing_identity(self, tmp_path):
        ledger = RunLedger(tmp_path)
        rec = RunRecord(kind="runner", label="x", run_id="custom",
                        created_at="2026-01-01T00:00:00+00:00")
        ledger.append(rec)
        back = ledger.records()[0]
        assert back.run_id == "custom"
        assert back.created_at == "2026-01-01T00:00:00+00:00"


class TestModuleDefault:
    def test_default_is_off(self):
        assert get_run_ledger() is None

    def test_capture_runs_installs_and_restores(self):
        before = get_run_ledger()
        with capture_runs() as ledger:
            assert get_run_ledger() is ledger
            record_experiment("probe", extra={"k": 1})
            assert ledger.records()[0].label == "probe"
        assert get_run_ledger() is before

    def test_configure_run_ledger_and_restore(self, tmp_path):
        previous = set_run_ledger(None)
        try:
            ledger = configure_run_ledger(tmp_path)
            assert get_run_ledger() is ledger
        finally:
            set_run_ledger(previous)

    def test_record_experiment_noop_when_off(self):
        assert get_run_ledger() is None
        assert record_experiment("probe") is None

    def test_record_experiment_captures_live_metrics(self):
        obs = configure(trace=False)
        try:
            obs.metrics.counter("probe.hits").inc(4)
            with capture_runs() as ledger:
                record_experiment("probe")
            rec = ledger.records()[0]
            assert rec.metric_value("probe.hits") == 4.0
        finally:
            disable()


def _quick_plan(n_bins=4):
    from repro.core import reshape
    from repro.core.planner import ProvisioningPlan
    from repro.corpus import text_400k_like

    units = list(reshape(text_400k_like(scale=2e-3), None).units)
    assignments = [units[i::n_bins] for i in range(n_bins)]
    return ProvisioningPlan(
        deadline=3600.0, planning_deadline=3600.0, strategy="uniform",
        predictor_name="affine", assignments=assignments,
        predicted_times=[60.0] * n_bins)


def _pos_workload():
    from repro.apps import PosCostProfile, PosTaggerApplication
    from repro.cloud import Workload

    return Workload("postag", PosTaggerApplication(), PosCostProfile())


class TestRunnerEmission:
    def test_execute_plan_emits_one_record(self):
        from repro.cloud import Cloud
        from repro.runner import execute_plan

        with capture_runs() as ledger:
            report = execute_plan(Cloud(seed=11), _pos_workload(),
                                  _quick_plan())
        recs = ledger.records(kind="runner")
        assert len(recs) == 1
        rec = recs[0]
        assert rec.label == "execute_plan"
        assert rec.config["seed"] == 11
        assert rec.config["strategy"] == "uniform"
        assert rec.deadline["bins"] == 4
        assert rec.deadline["makespan_s"] == pytest.approx(report.makespan)
        assert rec.billing["cost_usd"] == pytest.approx(
            report.cost, abs=1e-6)
        assert rec.profile["events_fired"] > 0
        assert set(rec.profile["phases"]) == {"acquire", "execute",
                                              "finalize"}

    def test_no_ledger_no_record_and_report_unchanged(self):
        from repro.cloud import Cloud
        from repro.runner import execute_plan

        assert get_run_ledger() is None
        with capture_runs() as ledger:
            ledgered = execute_plan(Cloud(seed=11), _pos_workload(),
                                    _quick_plan())
        bare = execute_plan(Cloud(seed=11), _pos_workload(), _quick_plan())
        assert bare.makespan == ledgered.makespan
        assert bare.cost == ledgered.cost
        assert len(ledger.records()) == 1

    def test_columnar_emission(self):
        from repro.cloud import Cloud
        from repro.runner import execute_uniform_fleet

        units = _quick_plan().assignments[0]
        with capture_runs() as ledger:
            report = execute_uniform_fleet(Cloud(seed=5), _pos_workload(),
                                           50, units, deadline=3600.0)
        rec = ledger.records(kind="columnar")[0]
        assert rec.label == "execute_uniform_fleet"
        assert rec.config["instances"] == 50
        assert rec.deadline["makespan_s"] == pytest.approx(report.makespan)
        assert rec.profile["events_fired"] == 2   # barrier + completion

    def test_sweep_ships_cell_records_home(self):
        from repro.experiments.sweep import Cell, run_sweep

        cells = [Cell(fn="repro.experiments.exp_chaos:run_cell",
                      kwargs={"scenario_name": "slow-ebs", "seed": s,
                              "resilience": True}, tag=s)
                 for s in (101, 202)]
        with capture_runs() as ledger:
            result = run_sweep(cells, processes=1)
        kinds = {r.kind for r in ledger.records()}
        assert "runner" in kinds           # cells' inner runner records
        assert len(result.run_records) == len(ledger.records())
        ids = [r.run_id for r in ledger.records()]
        assert len(ids) == len(set(ids))   # parent re-stamps unique ids
