"""Tests for plan execution and dynamic rescheduling."""

import numpy as np
import pytest

from repro.apps import PosCostProfile, PosTaggerApplication
from repro.cloud import Cloud, Workload
from repro.cloud.instance import HeterogeneityModel
from repro.core import StaticProvisioner, reshape
from repro.corpus import text_400k_like
from repro.perfmodel.regression import fit_affine
from repro.runner import DynamicPolicy, execute_plan, execute_with_monitoring


def model():
    x = np.array([1e5, 1e6, 5e6])
    return fit_affine(x, 0.327 + 0.865e-4 * x)


def pos_workload():
    return Workload("postag", PosTaggerApplication(), PosCostProfile())


def make_plan(deadline=30.0, strategy="uniform", scale=1e-3):
    cat = text_400k_like(scale=scale)
    units = list(reshape(cat, None).units)
    return StaticProvisioner(model()).plan(units, deadline, strategy=strategy)


class TestExecutePlan:
    def test_report_fields(self):
        cloud = Cloud(seed=1)
        plan = make_plan()
        report = execute_plan(cloud, pos_workload(), plan)
        assert report.n_instances == plan.n_instances
        assert report.makespan > 0
        assert report.instance_hours >= report.n_instances
        assert report.cost == pytest.approx(report.instance_hours * 0.085)

    def test_durations_deterministic(self):
        plan = make_plan()
        r1 = execute_plan(Cloud(seed=9), pos_workload(), plan)
        r2 = execute_plan(Cloud(seed=9), pos_workload(), plan)
        assert [a.duration for a in r1.runs] == [b.duration for b in r2.runs]

    def test_ledger_matches_report(self):
        cloud = Cloud(seed=2)
        report = execute_plan(cloud, pos_workload(), make_plan())
        assert cloud.ledger.total_instance_hours == report.instance_hours

    def test_all_instances_terminated(self):
        cloud = Cloud(seed=3)
        execute_plan(cloud, pos_workload(), make_plan())
        assert not cloud.running_instances()

    def test_uniform_meets_more_often_than_first_fit(self):
        """Fig. 8(a) vs 8(b): uniform bins lower the worst instance time."""
        wl = pos_workload()
        plan_ff = make_plan(strategy="first-fit")
        plan_uni = make_plan(strategy="uniform")
        assert plan_ff.n_instances == plan_uni.n_instances  # same cost basis
        ff = execute_plan(Cloud(seed=4), wl, plan_ff)
        uni = execute_plan(Cloud(seed=4), wl, plan_uni)
        assert uni.makespan <= ff.makespan * 1.05

    def test_misses_counted_per_instance(self):
        cloud = Cloud(seed=5)
        plan = make_plan(deadline=1.0)  # absurd deadline: everything misses
        plan.deadline = 1.0
        report = execute_plan(cloud, pos_workload(), plan)
        assert report.n_missed == report.n_instances
        assert not report.met_deadline

    def test_makespan_is_max_duration(self):
        cloud = Cloud(seed=6)
        report = execute_plan(cloud, pos_workload(), make_plan())
        assert report.makespan == max(r.duration for r in report.runs)

    def test_summary_keys(self):
        cloud = Cloud(seed=7)
        s = execute_plan(cloud, pos_workload(), make_plan()).summary()
        for key in ("strategy", "instances", "makespan_s", "missed",
                    "instance_hours", "cost_usd"):
            assert key in s

    def test_billed_hours_floor_one(self):
        cloud = Cloud(seed=8)
        report = execute_plan(cloud, pos_workload(), make_plan())
        assert all(r.billed_hours >= 1 for r in report.runs)


class TestDynamicRescheduling:
    def test_no_replacements_on_good_cloud(self):
        hmodel = HeterogeneityModel(p_slow=0.0, p_very_slow=0.0)
        cloud = Cloud(seed=11, heterogeneity=hmodel)
        report, events = execute_with_monitoring(cloud, pos_workload(), make_plan())
        assert events == []
        assert report.n_instances >= 1

    def test_straggler_replaced_on_bad_cloud(self):
        hmodel = HeterogeneityModel(p_slow=0.0, p_very_slow=1.0)  # all 0.25-0.5x
        cloud = Cloud(seed=12, heterogeneity=hmodel)
        report, events = execute_with_monitoring(
            cloud, pos_workload(), make_plan(),
            policy=DynamicPolicy(slow_threshold=0.7),
        )
        assert len(events) >= 1
        ev = events[0]
        assert ev.old_instance != ev.new_instance
        assert ev.observed_ratio < 0.7

    def test_replacement_improves_makespan_on_straggler(self):
        """§3.1: swapping a slow instance wins despite the 3 min penalty.

        Needs bins big enough that remaining work dwarfs the 180 s swap
        penalty — the same condition the paper's 210 GB-vs-57 GB argument
        relies on.
        """
        plan = make_plan(scale=3e-2, deadline=300.0)
        n = plan.n_instances

        class Scripted:
            """First 2n factor draws (cpu+io per launch) slow, rest fast."""

            def __init__(self, n_slow):
                self.remaining = n_slow

            def draw_factor(self, rng):
                if self.remaining > 0:
                    self.remaining -= 1
                    return 0.3
                return 1.0

        cloud_a = Cloud(seed=13, heterogeneity=Scripted(2 * n))
        static_report = execute_plan(cloud_a, pos_workload(), plan)

        cloud_b = Cloud(seed=13, heterogeneity=Scripted(2 * n))
        report, events = execute_with_monitoring(
            cloud_b, pos_workload(), plan,
            policy=DynamicPolicy(slow_threshold=0.7, probe_fraction=0.2,
                                 replacement_penalty=180.0),
        )
        assert len(events) >= 1  # stragglers detected
        assert report.makespan < static_report.makespan

    def test_retired_instances_still_billed(self):
        hmodel = HeterogeneityModel(p_slow=0.0, p_very_slow=1.0)
        cloud = Cloud(seed=14, heterogeneity=hmodel)
        report, events = execute_with_monitoring(cloud, pos_workload(), make_plan())
        if events:
            # ledger covers both retired and replacement instances
            assert len(cloud.ledger.records) > report.n_instances

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DynamicPolicy(probe_fraction=0.0)
        with pytest.raises(ValueError):
            DynamicPolicy(slow_threshold=1.5)
        with pytest.raises(ValueError):
            DynamicPolicy(replacement_penalty=-1.0)
