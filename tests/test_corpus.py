"""Tests for the synthetic corpus substrate (distributions, text, datasets)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import (
    LongTailSizeDistribution,
    TextProfile,
    agnes_grey_like,
    dubliners_like,
    generate_text,
    html_18mil_like,
    synthesize_novel,
    text_400k_like,
)
from repro.corpus.datasets import (
    AGNES_GREY_WORDS,
    DUBLINERS_WORDS,
    HTML_18MIL_DIST,
    TEXT_400K_DIST,
)
from repro.sim.random import RngStream
from repro.units import KB, MB


class TestLongTailDistribution:
    def test_sample_bounds(self):
        sizes = HTML_18MIL_DIST.sample(RngStream(1), 5000)
        assert sizes.min() >= HTML_18MIL_DIST.min_size
        assert sizes.max() <= HTML_18MIL_DIST.max_size

    def test_sample_deterministic(self):
        a = HTML_18MIL_DIST.sample(RngStream(5), 100)
        b = HTML_18MIL_DIST.sample(RngStream(5), 100)
        assert np.array_equal(a, b)

    def test_long_tail_shape(self):
        """Mean well above median is the long-tail signature."""
        sizes = HTML_18MIL_DIST.sample(RngStream(2), 20_000)
        assert sizes.mean() > 1.3 * np.median(sizes)

    def test_empty_sample(self):
        assert HTML_18MIL_DIST.sample(RngStream(1), 0).size == 0

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            HTML_18MIL_DIST.sample(RngStream(1), -1)

    def test_ensure_max_present(self):
        sizes = TEXT_400K_DIST.sample(RngStream(3), 500)
        pinned = TEXT_400K_DIST.ensure_max_present(sizes)
        assert pinned.max() == TEXT_400K_DIST.max_size

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LongTailSizeDistribution(1000, 1.0, 1.5, 1.0, 1000, 1, 100)
        with pytest.raises(ValueError):
            LongTailSizeDistribution(1000, 1.0, 0.1, 1.0, 1000, 100, 10)


class TestGenerateText:
    def test_exact_size(self):
        for n in (0, 1, 10, 1000, 5000):
            assert len(generate_text(RngStream(1), n)) == n

    def test_deterministic(self):
        assert generate_text(RngStream(4), 800) == generate_text(RngStream(4), 800)

    def test_html_mode_has_markup(self):
        text = generate_text(RngStream(2), 2000, TextProfile(html=True))
        assert "<p>" in text and "<html>" in text

    def test_plain_mode_no_markup(self):
        text = generate_text(RngStream(2), 2000, TextProfile(html=False))
        assert "<p>" not in text

    def test_sentence_length_knob(self):
        short = generate_text(RngStream(3), 20_000, TextProfile(avg_sentence_words=8, sentence_words_sd=2))
        long_ = generate_text(RngStream(3), 20_000, TextProfile(avg_sentence_words=30, sentence_words_sd=2))

        def mean_sentence_words(t):
            import re
            sents = [s for s in re.split(r"[.!?]", t) if s.split()]
            return np.mean([len(s.split()) for s in sents])

        assert mean_sentence_words(long_) > 1.5 * mean_sentence_words(short)

    def test_ascii_only(self):
        generate_text(RngStream(5), 3000).encode("ascii")

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            TextProfile(avg_sentence_words=1)
        with pytest.raises(ValueError):
            TextProfile(subordinate_rate=2.0)

    @given(st.integers(min_value=0, max_value=3000), st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=2000)
    def test_size_always_exact(self, n, seed):
        assert len(generate_text(RngStream(seed), n)) == n


class TestSynthesizeNovel:
    def test_exact_word_count(self):
        text = synthesize_novel(RngStream(1), 500, TextProfile())
        assert len(text.split()) == 500

    def test_zero_words(self):
        assert synthesize_novel(RngStream(1), 0, TextProfile()) == ""


class TestDatasets:
    def test_html_dataset_shape(self):
        cat = html_18mil_like(scale=2e-4, seed=99)
        d = cat.describe()
        assert d["files"] == 3600
        # majority under 50 kB
        under = sum(1 for f in cat if f.size < 50 * KB)
        assert under / len(cat) > 0.6
        # long tail reaches the pinned maximum
        assert cat.max_file_size == 43 * MB
        # mean near 50 kB (900 GB / 18 M files), generous band
        assert 25 * KB < d["mean"] < 110 * KB

    def test_text_dataset_shape(self):
        cat = text_400k_like(scale=5e-3, seed=7)
        assert len(cat) == 2000
        under = sum(1 for f in cat if f.size < 5 * KB)
        assert under / len(cat) > 0.55
        assert cat.max_file_size == 705 * KB
        d = cat.describe()
        assert 1.5 * KB < d["mean"] < 5 * KB

    def test_datasets_deterministic(self):
        a = text_400k_like(scale=1e-3, seed=1)
        b = text_400k_like(scale=1e-3, seed=1)
        assert [f.size for f in a] == [f.size for f in b]
        assert [f.path for f in a] == [f.path for f in b]

    def test_seed_changes_sizes(self):
        a = text_400k_like(scale=1e-3, seed=1)
        b = text_400k_like(scale=1e-3, seed=2)
        assert [f.size for f in a] != [f.size for f in b]

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            html_18mil_like(scale=0)
        with pytest.raises(ValueError):
            text_400k_like(scale=-1)

    def test_paths_sort_in_original_order(self):
        cat = text_400k_like(scale=1e-3)
        paths = [f.path for f in cat]
        assert paths == sorted(paths)

    def test_head_complexity_boost(self):
        """Probe head must be more complex than the catalogue average
        (drives the Eq. (3) vs Eq. (4) slope difference)."""
        cat = text_400k_like(scale=5e-3)
        slens = [f.stats.avg_sentence_words for f in cat]
        head = np.mean(slens[: len(slens) // 10])
        overall = np.mean(slens)
        assert head > overall + 0.5

    def test_html_files_marked_as_markup(self):
        cat = html_18mil_like(scale=1e-4)
        assert all(f.stats.markup_fraction > 0 for f in cat)

    def test_materialize_small_file(self):
        cat = text_400k_like(scale=1e-3)
        f = min(cat, key=lambda f: f.size)
        data = f.materialize()
        assert len(data) == f.size


class TestNovels:
    def test_word_counts_match_paper(self):
        assert dubliners_like().n_words == DUBLINERS_WORDS
        assert agnes_grey_like().n_words == AGNES_GREY_WORDS

    def test_word_count_gap_small(self):
        assert abs(dubliners_like().n_words - agnes_grey_like().n_words) < 300

    def test_complexity_differs(self):
        dub, agnes = dubliners_like(), agnes_grey_like()
        assert dub.stats().avg_sentence_words > 1.5 * agnes.stats().avg_sentence_words

    def test_virtual_file_size_matches_text(self):
        dub = dubliners_like()
        assert dub.virtual_file().size == len(dub.text.encode("ascii"))

    def test_deterministic(self):
        assert dubliners_like(seed=5).text == dubliners_like(seed=5).text
