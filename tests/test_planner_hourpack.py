"""Tests for the §5 hour-pack strategy and gold-standard tagger accuracy."""

import numpy as np
import pytest

from repro.apps.postagger import tag_sentence
from repro.apps.tokenize import tokenize
from repro.core import PlanError, StaticProvisioner
from repro.corpus import text_400k_like
from repro.perfmodel.regression import fit_affine
from repro.units import HOUR


def model():
    x = np.array([1e6, 1e7, 1e8])
    return fit_affine(x, 0.3 + 0.9e-4 * x)


class TestHourPack:
    def test_hour_pack_uses_more_instances_for_loose_deadlines(self):
        """§5: an hour per instance minimises makespan; deadline-packing
        minimises fleet size — for D=2h, hour-pack needs about twice the
        instances of deadline-packing at the same total instance-hours."""
        cat = text_400k_like(scale=0.15)
        units = list(cat)
        prov = StaticProvisioner(model())
        packed = prov.plan(units, 2 * HOUR, strategy="uniform")
        hourly = prov.plan(units, 2 * HOUR, strategy="hour-pack")
        assert hourly.n_instances > packed.n_instances
        assert hourly.n_instances == pytest.approx(2 * packed.n_instances, abs=2)
        # every hour-pack bin fits inside one billed hour
        assert all(t <= HOUR + 1 for t in hourly.predicted_times)
        # instance-hours parity: both strategies buy ~the same compute
        packed_hours = sum(int(np.ceil(t / HOUR)) for t in packed.predicted_times)
        hourly_hours = sum(max(1, int(np.ceil(t / HOUR))) for t in hourly.predicted_times)
        assert abs(packed_hours - hourly_hours) <= 2

    def test_hour_pack_lowers_makespan(self):
        cat = text_400k_like(scale=0.15)
        prov = StaticProvisioner(model())
        packed = prov.plan(list(cat), 2 * HOUR, strategy="uniform")
        hourly = prov.plan(list(cat), 2 * HOUR, strategy="hour-pack")
        assert hourly.max_predicted_time() < packed.max_predicted_time()

    def test_hour_pack_requires_loose_deadline(self):
        prov = StaticProvisioner(model())
        with pytest.raises(PlanError):
            prov.plan(list(text_400k_like(scale=0.01)), 1800.0,
                      strategy="hour-pack")

    def test_hour_pack_volume_conserved(self):
        cat = text_400k_like(scale=0.05)
        prov = StaticProvisioner(model())
        plan = prov.plan(list(cat), 2 * HOUR, strategy="hour-pack")
        assert plan.total_volume == cat.total_size


GOLD_SENTENCES = [
    ("The cat sat on the mat .",
     ["DT", "NN", "NNS", "IN", "DT", "NN", "PUNCT"]),
    ("She will manage the station .",
     ["PRP", "MD", "VB", "DT", "NN", "PUNCT"]),
    ("They quickly walked from the house .",
     ["PRP", "RB", "VBD", "IN", "DT", "NN", "PUNCT"]),
    ("A useful movement was made .",
     ["DT", "JJ", "NN", "VBD", "NN", "PUNCT"]),
    ("He has 42 reasons .",
     ["PRP", "VBZ", "CD", "NNS", "PUNCT"]),
]


class TestTaggerGoldStandard:
    """The tagger is a real component; pin its behaviour on a small gold set.

    Open-class suffix heuristics are approximate ('sat' is not in the
    lexicon), so the requirement is high agreement on the closed-class and
    rule-covered positions, not perfection.
    """

    @pytest.mark.parametrize("text,gold", GOLD_SENTENCES)
    def test_closed_class_positions_exact(self, text, gold):
        tokens = tokenize(text)
        tags, _ = tag_sentence(tokens)
        assert len(tags) == len(gold)
        for tok, got, want in zip(tokens, tags, gold):
            if want in ("DT", "PRP", "IN", "MD", "PUNCT", "CD", "VBZ"):
                assert got == want, f"{tok}: {got} != {want}"

    def test_overall_agreement_high(self):
        hits = total = 0
        for text, gold in GOLD_SENTENCES:
            tags, _ = tag_sentence(tokenize(text))
            hits += sum(g == w for g, w in zip(tags, gold))
            total += len(gold)
        assert hits / total >= 0.85
