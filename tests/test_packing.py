"""Tests for the bin-packing heuristics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packing import (
    Bin,
    Item,
    PackingError,
    derive_multiples,
    first_fit,
    first_fit_decreasing,
    pack_into_n_bins,
    subset_sum_first_fit,
    total_size,
    uniform_bins,
    validate_packing,
)


def items_of(*sizes: int) -> list[Item]:
    return [Item(key=f"f{i}", size=s) for i, s in enumerate(sizes)]


item_lists = st.lists(
    st.integers(min_value=0, max_value=5000), min_size=0, max_size=60
).map(lambda sizes: items_of(*sizes))


class TestItemBin:
    def test_negative_size_rejected(self):
        with pytest.raises(PackingError):
            Item(key="x", size=-1)

    def test_bin_add_and_free(self):
        b = Bin(capacity=10)
        b.add(Item("a", 4))
        assert b.used == 4 and b.free == 6

    def test_bin_overflow_rejected(self):
        b = Bin(capacity=10)
        b.add(Item("a", 8))
        with pytest.raises(PackingError):
            b.add(Item("b", 3))

    def test_uncapacitated_free_rejected(self):
        with pytest.raises(PackingError):
            _ = Bin(capacity=None).free

    def test_validate_detects_duplicate(self):
        it = Item("a", 1)
        b1, b2 = Bin(capacity=5), Bin(capacity=5)
        b1.add(it)
        b2.add(it)
        with pytest.raises(PackingError):
            validate_packing([it], [b1, b2])

    def test_validate_detects_missing(self):
        with pytest.raises(PackingError):
            validate_packing(items_of(3), [Bin(capacity=5)])


class TestFirstFit:
    def test_basic_placement(self):
        bins = first_fit(items_of(4, 4, 4), capacity=8)
        assert [b.used for b in bins] == [8, 4]

    def test_original_order_preserved_within_scan(self):
        # 6 opens bin0; 5 opens bin1; 2 goes back into bin0 (first fit).
        bins = first_fit(items_of(6, 5, 2), capacity=8)
        assert [it.key for it in bins[0].items] == ["f0", "f2"]
        assert [it.key for it in bins[1].items] == ["f1"]

    def test_oversized_gets_solo_bin(self):
        bins = first_fit(items_of(20, 1), capacity=8)
        assert bins[0].used == 20 and len(bins[0]) == 1
        assert bins[1].used == 1

    def test_bad_capacity(self):
        with pytest.raises(PackingError):
            first_fit(items_of(1), capacity=0)

    def test_empty_input(self):
        assert first_fit([], capacity=10) == []

    @given(item_lists, st.integers(min_value=1, max_value=4000))
    @settings(max_examples=120)
    def test_is_partition(self, items, cap):
        bins = first_fit(items, cap)
        validate_packing(items, bins)

    @given(item_lists, st.integers(min_value=1, max_value=4000))
    @settings(max_examples=120)
    def test_no_two_bins_fit_together_invariant(self, items, cap):
        """Classic FF invariant: at most one bin can be <= half full
        (excluding oversized solo bins)."""
        bins = [b for b in first_fit(items, cap) if b.used <= cap]
        under_half = sum(1 for b in bins if b.used * 2 <= cap)
        # zero-size items can create a degenerate all-zero first bin
        if all(b.used > 0 for b in bins):
            assert under_half <= 1


class TestFirstFitDecreasing:
    def test_sorted_order(self):
        bins = first_fit_decreasing(items_of(1, 9, 5), capacity=10)
        assert bins[0].items[0].size == 9

    @given(item_lists, st.integers(min_value=1, max_value=4000))
    @settings(max_examples=80)
    def test_never_more_bins_than_ff_plus_margin(self, items, cap):
        """FFD should not use more bins than FF does (it's at least as good
        on every instance we generate)."""
        ffd = first_fit_decreasing(items, cap)
        ff = first_fit(items, cap)
        assert len(ffd) <= len(ff)

    @given(item_lists, st.integers(min_value=1, max_value=4000))
    @settings(max_examples=80)
    def test_is_partition(self, items, cap):
        validate_packing(items, first_fit_decreasing(items, cap))


class TestPackIntoNBins:
    def test_fixed_count(self):
        bins = pack_into_n_bins(items_of(3, 3, 3, 3), n_bins=2, capacity=6)
        assert len(bins) == 2
        validate_packing(items_of(3, 3, 3, 3), bins)

    def test_overflow_spills_to_lightest(self):
        bins = pack_into_n_bins(items_of(5, 5, 5), n_bins=2, capacity=5)
        assert len(bins) == 2
        assert sum(b.used for b in bins) == 15

    def test_strict_overflow_raises(self):
        with pytest.raises(PackingError):
            pack_into_n_bins(items_of(5, 5, 5), n_bins=2, capacity=5, strict=True)

    def test_zero_bins_rejected(self):
        with pytest.raises(PackingError):
            pack_into_n_bins(items_of(1), n_bins=0, capacity=5)

    @given(
        item_lists,
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=4000),
    )
    @settings(max_examples=100)
    def test_partition_and_count(self, items, n, cap):
        bins = pack_into_n_bins(items, n_bins=n, capacity=cap)
        assert len(bins) == n
        assert sum(b.used for b in bins) == total_size(items)


class TestUniformBins:
    def test_balanced_in_order(self):
        bins = uniform_bins(items_of(2, 2, 2, 2, 2, 2), n_bins=3)
        assert [b.used for b in bins] == [4, 4, 4]
        # order preserved: concatenating bins recovers the input order
        keys = [it.key for b in bins for it in b.items]
        assert keys == [f"f{i}" for i in range(6)]

    def test_unordered_balance_tight(self):
        bins = uniform_bins(items_of(9, 1, 5, 5), n_bins=2, preserve_order=False)
        loads = sorted(b.used for b in bins)
        assert loads == [10, 10]

    def test_zero_bins_rejected(self):
        with pytest.raises(PackingError):
            uniform_bins(items_of(1), n_bins=0)

    def test_empty_items(self):
        bins = uniform_bins([], n_bins=3)
        assert len(bins) == 3 and all(b.used == 0 for b in bins)

    @given(item_lists, st.integers(min_value=1, max_value=10))
    @settings(max_examples=100)
    def test_partition_exact_count(self, items, n):
        bins = uniform_bins(items, n_bins=n)
        assert len(bins) == n
        validate_packing(items, bins)

    @given(item_lists, st.integers(min_value=1, max_value=10))
    @settings(max_examples=100)
    def test_unordered_max_load_bound(self, items, n):
        """Greedy balancing: max load <= average + max item size."""
        if not items:
            return
        bins = uniform_bins(items, n_bins=n, preserve_order=False)
        avg = total_size(items) / n
        biggest = max(it.size for it in items)
        assert max(b.used for b in bins) <= avg + biggest


class TestSubsetSumFirstFit:
    def test_merges_to_unit(self):
        bins = subset_sum_first_fit(items_of(400, 300, 300, 600), unit_size=1000)
        validate_packing(items_of(400, 300, 300, 600), bins)
        assert all(b.used <= 1000 for b in bins)

    def test_greedy_mode_fills_better(self):
        # order-preserving FF: [700], [300, 300], [400] -> 3 bins
        # greedy subset-sum: [700,300], [400,300] -> 2 bins
        items = items_of(700, 300, 300, 400)
        ordered = subset_sum_first_fit(items, 1000, preserve_order=True)
        greedy = subset_sum_first_fit(items, 1000, preserve_order=False)
        assert len(greedy) <= len(ordered)
        validate_packing(items, greedy)

    def test_oversized_isolated_in_greedy_mode(self):
        bins = subset_sum_first_fit(items_of(5000, 10), 1000, preserve_order=False)
        assert bins[0].used == 5000 and len(bins[0]) == 1

    def test_bad_unit(self):
        with pytest.raises(PackingError):
            subset_sum_first_fit(items_of(1), 0)

    @given(item_lists, st.integers(min_value=1, max_value=4000), st.booleans())
    @settings(max_examples=120)
    def test_partition_any_mode(self, items, unit, order):
        bins = subset_sum_first_fit(items, unit, preserve_order=order)
        validate_packing(items, bins)


class TestDeriveMultiples:
    def test_coalesces_consecutive(self):
        base = subset_sum_first_fit(items_of(*([100] * 10)), unit_size=100)
        assert len(base) == 10
        derived = derive_multiples(base, [2, 5])
        assert len(derived[2]) == 5
        assert len(derived[5]) == 2
        assert all(b.used == 200 for b in derived[2])

    def test_partition_preserved(self):
        items = items_of(30, 70, 20, 80, 50, 50)
        base = subset_sum_first_fit(items, unit_size=100)
        for k, bins in derive_multiples(base, [1, 2, 3]).items():
            validate_packing(items, bins)

    def test_factor_one_is_identityish(self):
        items = items_of(10, 20, 30)
        base = subset_sum_first_fit(items, unit_size=60)
        d1 = derive_multiples(base, [1])[1]
        assert [b.used for b in d1] == [b.used for b in base]

    def test_empty_base(self):
        assert derive_multiples([], [2]) == {2: []}

    def test_bad_factor(self):
        base = subset_sum_first_fit(items_of(10), 20)
        with pytest.raises(PackingError):
            derive_multiples(base, [0])
