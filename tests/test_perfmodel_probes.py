"""Tests for measurements, probe construction, the §4 protocol, selection
and sampling refits."""

import pytest

from repro.apps import (
    GrepApplication,
    GrepCostProfile,
    PosCostProfile,
    PosTaggerApplication,
)
from repro.cloud import Cloud, ExecutionService, Workload
from repro.corpus import text_400k_like
from repro.perfmodel import (
    Measurement,
    ProbeCampaign,
    ProbeSetResult,
    build_probe_set,
    collect_sample_points,
    preferred_unit_size,
    refit_with_samples,
    repeat_measure,
)
from repro.sim.random import RngStream
from repro.units import KB
from repro.vfs import Segment


class TestMeasurement:
    def test_stats(self):
        m = Measurement(values=(1.0, 2.0, 3.0))
        assert m.mean == 2.0 and m.n == 3
        assert m.std == pytest.approx(1.0)
        assert m.cv == pytest.approx(0.5)

    def test_single_value_std_zero(self):
        m = Measurement(values=(5.0,))
        assert m.std == 0.0 and m.is_stable()

    def test_stability_threshold(self):
        assert Measurement(values=(10.0, 10.2, 9.8)).is_stable(0.25)
        assert not Measurement(values=(0.1, 1.0, 0.05)).is_stable(0.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Measurement(values=())

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Measurement(values=(1.0, -0.1))

    def test_repeat_measure(self):
        counter = iter(range(100))
        m = repeat_measure(lambda: float(next(counter)), repeats=5)
        assert m.values == (0.0, 1.0, 2.0, 3.0, 4.0)

    def test_repeat_measure_bad_count(self):
        with pytest.raises(ValueError):
            repeat_measure(lambda: 1.0, repeats=0)


class TestProbeSetResult:
    def make(self):
        return ProbeSetResult(
            volume=1000,
            variants={
                "orig": Measurement(values=(10.0, 10.1)),
                1000: Measurement(values=(8.0, 8.2)),
                2000: Measurement(values=(9.0, 9.1)),
            },
        )

    def test_best_variant(self):
        label, m = self.make().best_variant()
        assert label == 1000 and m.mean == pytest.approx(8.1)

    def test_ordered_unit_sizes(self):
        assert self.make().ordered_unit_sizes() == [1000, 2000]

    def test_stability(self):
        assert self.make().stable()


class TestBuildProbeSet:
    @pytest.fixture()
    def catalogue(self):
        return text_400k_like(scale=1e-3)

    def test_orig_variant_is_head(self, catalogue):
        ps = build_probe_set(catalogue, volume=50 * KB, unit_sizes=[])
        head = catalogue.head_by_volume(50 * KB)
        assert [u.path for u in ps.variants["orig"]] == [f.path for f in head]

    def test_variant_volume_conserved(self, catalogue):
        ps = build_probe_set(catalogue, volume=100 * KB, unit_sizes=[5 * KB, 10 * KB])
        orig_total = sum(u.size for u in ps.variants["orig"])
        for s in (5 * KB, 10 * KB):
            assert sum(u.size for u in ps.variants[s]) == orig_total

    def test_multiples_derive_from_base_packing(self, catalogue):
        """Units at k*s0 must coalesce k consecutive base bins."""
        ps = build_probe_set(catalogue, volume=100 * KB, unit_sizes=[5 * KB, 10 * KB])
        base = ps.variants[5 * KB]
        derived = ps.variants[10 * KB]
        # first derived unit contains exactly the members of the first two base units
        first_two = [m.path for seg in base[:2] for m in seg.members]
        assert [m.path for m in derived[0].members] == first_two

    def test_non_multiple_size_packed_directly(self, catalogue):
        ps = build_probe_set(catalogue, volume=100 * KB, unit_sizes=[4 * KB, 6 * KB])
        assert all(isinstance(u, Segment) for u in ps.variants[6 * KB])
        assert all(u.size <= 6 * KB or u.n_members == 1 for u in ps.variants[6 * KB])

    def test_unit_size_caps_at_volume(self, catalogue):
        """sn = V collapses the probe into a single unit (§4)."""
        ps = build_probe_set(catalogue, volume=50 * KB, unit_sizes=[50 * KB])
        units = ps.variants[50 * KB]
        assert len(units) <= 3  # nearly everything in one bin

    def test_bad_inputs(self, catalogue):
        with pytest.raises(ValueError):
            build_probe_set(catalogue, volume=0, unit_sizes=[1])
        with pytest.raises(ValueError):
            build_probe_set(catalogue, volume=100, unit_sizes=[0])

    def test_labels(self, catalogue):
        ps = build_probe_set(catalogue, volume=50 * KB, unit_sizes=[5 * KB])
        assert ps.labels() == ["orig", 5 * KB]


def make_campaign(seed=21, workload=None, repeats=3):
    cloud = Cloud(seed=seed)
    # quality-controlled instance so probe measurements are clean
    inst = cloud.launch_instance()
    inst.cpu_factor = inst.io_factor = 1.0
    svc = ExecutionService(cloud)
    wl = workload or Workload("postag", PosTaggerApplication(), PosCostProfile())
    return ProbeCampaign(svc, inst, wl, repeats=repeats), cloud


class TestProbeCampaign:
    def test_measure_repeats(self):
        campaign, _ = make_campaign()
        cat = text_400k_like(scale=2e-4)
        m = campaign.measure(tuple(cat)[:10], directory="t")
        assert m.n == 3

    def test_protocol_escalates_until_stable(self):
        campaign, _ = make_campaign()
        cat = text_400k_like(scale=2e-3)
        result = campaign.run_protocol(
            cat,
            initial_volume=20 * KB,
            unit_sizes_for=lambda v: [KB, 10 * KB],
            growth=5,
            max_rounds=4,
        )
        assert len(result.probe_sets) >= 1
        volumes = [ps.volume for ps in result.probe_sets]
        assert volumes == sorted(volumes)
        if len(volumes) > 1:
            assert volumes[1] == volumes[0] * 5

    def test_protocol_final_accessor(self):
        campaign, _ = make_campaign()
        cat = text_400k_like(scale=5e-4)
        result = campaign.run_protocol(
            cat, initial_volume=100 * KB,
            unit_sizes_for=lambda v: [KB], max_rounds=2,
        )
        assert result.final is result.probe_sets[-1]

    def test_observation_points_accumulate(self):
        campaign, _ = make_campaign()
        cat = text_400k_like(scale=5e-4)
        campaign.run_protocol(cat, initial_volume=100 * KB,
                              unit_sizes_for=lambda v: [KB], max_rounds=2)
        xs, ys = campaign.timing_points("orig")
        assert len(xs) == len(ys) >= 3
        assert all(y > 0 for y in ys)

    def test_bad_protocol_params(self):
        campaign, _ = make_campaign()
        cat = text_400k_like(scale=1e-4)
        with pytest.raises(ValueError):
            campaign.run_protocol(cat, initial_volume=0, unit_sizes_for=lambda v: [])
        with pytest.raises(ValueError):
            campaign.run_protocol(cat, initial_volume=10, unit_sizes_for=lambda v: [], growth=1)


class TestPreferredUnitSize:
    def test_minimum_selected(self):
        ps = ProbeSetResult(
            volume=10_000,
            variants={
                "orig": Measurement(values=(12.0, 12.1)),
                1000: Measurement(values=(10.0, 10.1)),
                5000: Measurement(values=(11.0, 11.2)),
            },
        )
        pick = preferred_unit_size([ps])
        assert pick.label == 1000

    def test_plateau_prefers_smallest_unit(self):
        ps = ProbeSetResult(
            volume=10_000,
            variants={
                "orig": Measurement(values=(20.0,)),
                1000: Measurement(values=(10.2,)),
                2000: Measurement(values=(10.0,)),
                4000: Measurement(values=(10.3,)),
            },
        )
        pick = preferred_unit_size([ps], plateau_tolerance=0.05)
        assert pick.label == 1000
        assert set(pick.plateau) == {1000, 2000, 4000}

    def test_orig_wins_when_fastest(self):
        """The POS case: original segmentation fares best (Fig. 7)."""
        ps = ProbeSetResult(
            volume=1000_000,
            variants={
                "orig": Measurement(values=(85.0,)),
                1000: Measurement(values=(86.0,)),
                100_000: Measurement(values=(120.0,)),
            },
        )
        assert preferred_unit_size([ps], plateau_tolerance=0.02).label == "orig"

    def test_later_stable_set_preferred(self):
        unstable_small = ProbeSetResult(
            volume=100,
            variants={"orig": Measurement(values=(0.1, 0.5, 0.05))},
        )
        stable_large = ProbeSetResult(
            volume=100_000,
            variants={
                "orig": Measurement(values=(50.0, 50.5)),
                10_000: Measurement(values=(40.0, 40.1)),
            },
        )
        pick = preferred_unit_size([unstable_small, stable_large])
        assert pick.from_volume == 100_000
        assert pick.label == 10_000

    def test_unstable_variants_excluded_from_plateau(self):
        ps = ProbeSetResult(
            volume=1000,
            variants={
                "orig": Measurement(values=(10.0, 10.1)),
                500: Measurement(values=(2.0, 18.0)),  # fast mean, wild std
            },
        )
        pick = preferred_unit_size([ps])
        assert pick.label == "orig"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            preferred_unit_size([])


class TestSamplingRefit:
    def test_collect_points_and_refit(self):
        campaign, _ = make_campaign()
        cat = text_400k_like(scale=2e-3)
        rng = RngStream(5)
        points = collect_sample_points(
            campaign, cat, rng,
            n_samples=3, sample_volume=100 * KB, unit_size=None,
        )
        # 3 samples x (full + one half subset)
        assert len(points) == 6
        base = [(50_000.0, 5.0), (100_000.0, 9.0)]
        model = refit_with_samples(base, points)
        assert model.b > 0

    def test_samples_disjoint(self):
        campaign, _ = make_campaign()
        cat = text_400k_like(scale=1e-3)
        rng = RngStream(6)
        pts_a = collect_sample_points(campaign, cat, rng, n_samples=2,
                                      sample_volume=50 * KB, unit_size=None)
        assert len(pts_a) == 4

    def test_reshaped_samples(self):
        wl = Workload("grep", GrepApplication(), GrepCostProfile())
        campaign, _ = make_campaign(workload=wl)
        cat = text_400k_like(scale=1e-3)
        pts = collect_sample_points(campaign, cat, RngStream(7), n_samples=2,
                                    sample_volume=50 * KB, unit_size=10 * KB)
        assert len(pts) == 4

    def test_bad_params(self):
        campaign, _ = make_campaign()
        cat = text_400k_like(scale=1e-4)
        with pytest.raises(ValueError):
            collect_sample_points(campaign, cat, RngStream(1), n_samples=0,
                                  sample_volume=100, unit_size=None)
        with pytest.raises(ValueError):
            collect_sample_points(campaign, cat, RngStream(1), n_samples=1,
                                  sample_volume=100, unit_size=None,
                                  subset_fractions=(1.5,))
        with pytest.raises(ValueError):
            refit_with_samples([], [(1.0, 1.0)])
