"""Differential bit-equality: unified ExecutionCore vs the frozen seed runners.

Every public runner entry point is now a policy configuration of
:class:`repro.runner.core.ExecutionCore`.  These tests run each one and
its frozen pre-refactor copy (``tests/reference_runners.py``) on
identically-seeded clouds and assert *bit* equality — durations, boot
delays, makespans, misses, bills, ledger records, lease statistics,
replacement/crash events — across multiple seeds and chaos scenarios.
No tolerance anywhere: ``==`` on floats is the point.
"""

import numpy as np
import pytest

from tests.reference_runners import (
    execute_fault_tolerant_reference,
    execute_on_fleet_reference,
    execute_plan_event_driven_reference,
    execute_plan_reference,
    execute_with_monitoring_reference,
)
from repro.apps import PosCostProfile, PosTaggerApplication
from repro.chaos import FaultInjector, get_scenario
from repro.cloud import Cloud, FailureModel, Workload
from repro.core import StaticProvisioner, reshape
from repro.corpus import text_400k_like
from repro.fleet import LeaseManager
from repro.perfmodel.regression import fit_affine
from repro.resilience import DegradationPlanner, ResilientLauncher
from repro.runner import (
    DynamicPolicy,
    FaultPolicy,
    execute_fault_tolerant,
    execute_on_fleet,
    execute_plan,
    execute_plan_event_driven,
    execute_with_monitoring,
)

SEEDS = [1, 7, 42]
CHAOS = ["capacity-crunch", "flaky-boots"]


def pos_workload():
    return Workload("postag", PosTaggerApplication(), PosCostProfile())


def make_plan(deadline=30.0, scale=2e-3, strategy="uniform"):
    x = np.array([1e5, 1e6, 5e6])
    model = fit_affine(x, 0.327 + 0.865e-4 * x)
    cat = text_400k_like(scale=scale)
    return StaticProvisioner(model).plan(
        list(reshape(cat, None).units), deadline, strategy=strategy)


def make_straggly_plan(deadline=30.0, scale=2e-3):
    """A plan whose predictor underestimates ~2×, so every probe looks slow.

    Straggler detection compares observed probe throughput to the plan's
    implied throughput; an optimistic model makes the ratio land well
    under any threshold, deterministically exercising the replacement
    path on every seed.
    """
    x = np.array([1e5, 1e6, 5e6])
    model = fit_affine(x, 0.5 * (0.327 + 0.865e-4 * x))
    cat = text_400k_like(scale=scale)
    return StaticProvisioner(model).plan(
        list(reshape(cat, None).units), deadline, strategy="uniform")


def chaos_cloud(seed, scenario, **kw):
    return Cloud(seed=seed,
                 chaos=FaultInjector([get_scenario(scenario)], seed=seed),
                 **kw)


def assert_reports_equal(a, b):
    """Bit-equality of every report field the runners produce."""
    assert a.strategy == b.strategy
    assert a.deadline == b.deadline
    assert a.rate == b.rate
    assert [r.instance_id for r in a.runs] == [r.instance_id for r in b.runs]
    assert [r.duration for r in a.runs] == [r.duration for r in b.runs]
    assert [r.boot_delay for r in a.runs] == [r.boot_delay for r in b.runs]
    assert [r.n_units for r in a.runs] == [r.n_units for r in b.runs]
    assert [r.volume for r in a.runs] == [r.volume for r in b.runs]
    assert [r.predicted for r in a.runs] == [r.predicted for r in b.runs]
    assert a.makespan == b.makespan
    assert a.n_missed == b.n_missed
    assert a.instance_hours == b.instance_hours
    assert a.cost == b.cost
    assert a.retrieval_seconds == b.retrieval_seconds
    assert [(f.bin_index, f.reason, f.n_units, f.volume, f.completed_units,
             f.elapsed, f.billed_hours, f.absorbed) for f in a.failures] == \
           [(f.bin_index, f.reason, f.n_units, f.volume, f.completed_units,
             f.elapsed, f.billed_hours, f.absorbed) for f in b.failures]


def assert_ledgers_equal(ca, cb):
    a = [(r.instance_id, r.instance_type, r.start, r.end, r.hours, r.cost)
         for r in ca.ledger.records]
    b = [(r.instance_id, r.instance_type, r.start, r.end, r.hours, r.cost)
         for r in cb.ledger.records]
    assert a == b
    assert ca.now == cb.now


class TestStaticRunner:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_plain(self, seed):
        plan, wl = make_plan(), pos_workload()
        ca, cb = Cloud(seed=seed), Cloud(seed=seed)
        new = execute_plan(ca, wl, plan)
        ref = execute_plan_reference(cb, wl, plan)
        assert_reports_equal(new, ref)
        assert_ledgers_equal(ca, cb)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_measure_retrieval(self, seed):
        plan, wl = make_plan(), pos_workload()
        ca, cb = Cloud(seed=seed), Cloud(seed=seed)
        new = execute_plan(ca, wl, plan, measure_retrieval=True)
        ref = execute_plan_reference(cb, wl, plan, measure_retrieval=True)
        assert new.retrieval_seconds is not None
        assert_reports_equal(new, ref)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("scenario", CHAOS)
    def test_chaos_bare(self, seed, scenario):
        """No launcher: injected faults surface as failed bins, identically."""
        plan, wl = make_plan(), pos_workload()
        ca, cb = chaos_cloud(seed, scenario), chaos_cloud(seed, scenario)
        new = execute_plan(ca, wl, plan)
        ref = execute_plan_reference(cb, wl, plan)
        assert_reports_equal(new, ref)
        assert_ledgers_equal(ca, cb)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("scenario", CHAOS)
    def test_chaos_resilient_with_degradation(self, seed, scenario):
        plan, wl = make_plan(), pos_workload()
        ca, cb = chaos_cloud(seed, scenario), chaos_cloud(seed, scenario)
        new = execute_plan(ca, wl, plan,
                           launcher=ResilientLauncher(
                               ca, degradation=DegradationPlanner()))
        ref = execute_plan_reference(cb, wl, plan,
                                     launcher=ResilientLauncher(
                                         cb, degradation=DegradationPlanner()))
        assert_reports_equal(new, ref)
        assert_ledgers_equal(ca, cb)


class TestEventDrivenRunner:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_report_and_timeline(self, seed):
        plan, wl = make_plan(), pos_workload()
        ca, cb = Cloud(seed=seed), Cloud(seed=seed)
        new, tl_new = execute_plan_event_driven(ca, wl, plan)
        ref, tl_ref = execute_plan_event_driven_reference(cb, wl, plan)
        assert_reports_equal(new, ref)
        assert tl_new.points == tl_ref.points
        assert_ledgers_equal(ca, cb)

    def test_chaos_still_raises(self):
        """The event runner's legacy contract: launch faults propagate."""
        from repro.chaos import ChaosError

        plan, wl = make_plan(), pos_workload()
        with pytest.raises(ChaosError):
            execute_plan_event_driven(chaos_cloud(3, "capacity-crunch"), wl,
                                      plan)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_boot_hangs_identical(self, seed):
        """flaky-boots never rejects, it hangs boots — both paths agree."""
        plan, wl = make_plan(), pos_workload()
        ca, cb = chaos_cloud(seed, "flaky-boots"), chaos_cloud(seed, "flaky-boots")
        new, tl_new = execute_plan_event_driven(ca, wl, plan)
        ref, tl_ref = execute_plan_event_driven_reference(cb, wl, plan)
        assert_reports_equal(new, ref)
        assert tl_new.points == tl_ref.points
        assert_ledgers_equal(ca, cb)


class TestMonitoredRunner:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("replace_at", ["immediately", "hour-boundary"])
    def test_plain(self, seed, replace_at):
        plan, wl = make_straggly_plan(), pos_workload()
        pol = DynamicPolicy(slow_threshold=0.9, replace_at=replace_at)
        ca, cb = Cloud(seed=seed), Cloud(seed=seed)
        new, ev_new = execute_with_monitoring(ca, wl, plan, policy=pol)
        ref, ev_ref = execute_with_monitoring_reference(cb, wl, plan, policy=pol)
        assert ev_new, "plan too healthy — no straggler replaced"
        assert_reports_equal(new, ref)
        assert [(e.bin_index, e.old_instance, e.new_instance, e.at_progress,
                 e.observed_ratio) for e in ev_new] == \
               [(e.bin_index, e.old_instance, e.new_instance, e.at_progress,
                 e.observed_ratio) for e in ev_ref]
        assert_ledgers_equal(ca, cb)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_leased_replacements(self, seed):
        plan, wl = make_straggly_plan(), pos_workload()
        pol = DynamicPolicy(slow_threshold=0.9)
        ca, cb = Cloud(seed=seed), Cloud(seed=seed)
        ma, mb = LeaseManager(ca), LeaseManager(cb)
        new, ev_new = execute_with_monitoring(ca, wl, plan, policy=pol,
                                              lease_manager=ma)
        ref, ev_ref = execute_with_monitoring_reference(
            cb, wl, plan, policy=pol, lease_manager=mb)
        assert ev_new, "plan too healthy — no straggler replaced"
        assert_reports_equal(new, ref)
        assert len(ev_new) == len(ev_ref)
        assert ma.stats() == mb.stats()
        ma.shutdown(), mb.shutdown()
        assert_ledgers_equal(ca, cb)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("scenario", CHAOS)
    def test_chaos_resilient(self, seed, scenario):
        plan, wl = make_straggly_plan(), pos_workload()
        pol = DynamicPolicy(slow_threshold=0.9)
        ca, cb = chaos_cloud(seed, scenario), chaos_cloud(seed, scenario)
        new, ev_new = execute_with_monitoring(
            ca, wl, plan, policy=pol, launcher=ResilientLauncher(ca))
        ref, ev_ref = execute_with_monitoring_reference(
            cb, wl, plan, policy=pol, launcher=ResilientLauncher(cb))
        assert_reports_equal(new, ref)
        assert len(ev_new) == len(ev_ref)
        assert_ledgers_equal(ca, cb)


class TestFaultTolerantRunner:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_crashy_cloud(self, seed):
        plan, wl = make_plan(deadline=200.0), pos_workload()
        fm = FailureModel(mtbf_hours=0.05)
        pol = FaultPolicy(batch_units=10)
        ca = Cloud(seed=seed, failure_model=fm)
        cb = Cloud(seed=seed, failure_model=fm)
        new, ev_new = execute_fault_tolerant(ca, wl, plan, policy=pol)
        ref, ev_ref = execute_fault_tolerant_reference(cb, wl, plan, policy=pol)
        assert ev_new, "scenario too calm — no crashes exercised"
        assert_reports_equal(new, ref)
        assert [(e.bin_index, e.instance_id, e.at_elapsed, e.lost_batch_units)
                for e in ev_new] == \
               [(e.bin_index, e.instance_id, e.at_elapsed, e.lost_batch_units)
                for e in ev_ref]
        assert_ledgers_equal(ca, cb)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_exhaustion_fail_bin(self, seed):
        plan, wl = make_plan(deadline=200.0), pos_workload()
        fm = FailureModel(mtbf_hours=0.002)
        pol = FaultPolicy(batch_units=5, max_crashes_per_bin=2)
        ca = Cloud(seed=seed, failure_model=fm)
        cb = Cloud(seed=seed, failure_model=fm)
        new, _ = execute_fault_tolerant(ca, wl, plan, policy=pol)
        ref, _ = execute_fault_tolerant_reference(cb, wl, plan, policy=pol)
        assert new.failures, "scenario too calm — no bin exhausted"
        assert_reports_equal(new, ref)
        assert_ledgers_equal(ca, cb)

    def test_exhaustion_raise_matches_legacy(self):
        plan, wl = make_plan(deadline=200.0), pos_workload()
        fm = FailureModel(mtbf_hours=0.002)
        pol = FaultPolicy(batch_units=5, max_crashes_per_bin=2,
                          on_exhaustion="raise")
        with pytest.raises(RuntimeError, match="the cloud is unusable"):
            execute_fault_tolerant(Cloud(seed=1, failure_model=fm), wl, plan,
                                   policy=pol)
        with pytest.raises(RuntimeError, match="the cloud is unusable"):
            execute_fault_tolerant_reference(
                Cloud(seed=1, failure_model=fm), wl, plan, policy=pol)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("scenario", CHAOS)
    def test_chaos_resilient(self, seed, scenario):
        plan, wl = make_plan(deadline=200.0), pos_workload()
        fm = FailureModel(mtbf_hours=0.05)
        pol = FaultPolicy(batch_units=10)
        ca = chaos_cloud(seed, scenario, failure_model=fm)
        cb = chaos_cloud(seed, scenario, failure_model=fm)
        new, ev_new = execute_fault_tolerant(
            ca, wl, plan, policy=pol, launcher=ResilientLauncher(ca))
        ref, ev_ref = execute_fault_tolerant_reference(
            cb, wl, plan, policy=pol, launcher=ResilientLauncher(cb))
        assert_reports_equal(new, ref)
        assert len(ev_new) == len(ev_ref)
        assert_ledgers_equal(ca, cb)


class TestFleetRunner:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_consecutive_campaigns_reuse_warm_hours(self, seed):
        """Two back-to-back campaigns: warm-pool hits must match exactly."""
        wl = pos_workload()
        ca, cb = Cloud(seed=seed), Cloud(seed=seed)
        ma, mb = LeaseManager(ca), LeaseManager(cb)
        for strategy in ("uniform", "first-fit"):
            plan_a = make_plan(strategy=strategy)
            plan_b = make_plan(strategy=strategy)
            new = execute_on_fleet(ma, wl, plan_a, tenant="t")
            ref = execute_on_fleet_reference(mb, wl, plan_b, tenant="t")
            assert_reports_equal(new, ref)
            assert plan_a.lease_sources == plan_b.lease_sources
        assert ma.stats() == mb.stats()
        assert ma.hit_rate() == mb.hit_rate()
        ma.shutdown(), mb.shutdown()
        assert_ledgers_equal(ca, cb)


class TestCoreInvariants:
    def test_timeline_produced_for_every_runner(self):
        """The core's event loop feeds a timeline even for legacy paths."""
        from repro.runner import (
            ExecutionCore,
            FleetLaunchAcquisition,
            RunToCompletion,
            StaticCompletion,
        )

        plan, wl = make_plan(), pos_workload()
        core = ExecutionCore(Cloud(seed=3), wl, plan,
                             acquisition=FleetLaunchAcquisition(),
                             progress=RunToCompletion(),
                             completion=StaticCompletion())
        result = core.run()
        assert len(result.timeline.points) == len(result.report.runs)
        completed = [c for _, _, c in result.timeline.points]
        assert completed == sorted(completed)

    def test_engine_clock_matches_arithmetic_runner(self):
        plan, wl = make_plan(), pos_workload()
        ca, cb = Cloud(seed=11), Cloud(seed=11)
        execute_plan(ca, wl, plan)
        execute_plan_reference(cb, wl, plan)
        assert ca.engine.now == cb.engine.now
        assert ca.engine.events_fired >= len(plan.assignments)
