"""Tests for distribution fitting, catalogue utilities, and unit helpers."""

import numpy as np
import pytest

from repro.corpus import LongTailSizeDistribution
from repro.corpus.datasets import TEXT_400K_DIST
from repro.sim.random import RngStream
from repro.units import fmt_bytes, fmt_seconds
from repro.vfs import Catalogue, TextStats, VirtualFile


def catalogue_of(sizes):
    return Catalogue([
        VirtualFile(path=f"f{i:04d}", size=s, stats=TextStats(), content_seed=i)
        for i, s in enumerate(sizes)
    ])


class TestDistributionFit:
    def test_recovers_body_parameters(self):
        truth = TEXT_400K_DIST
        sizes = truth.sample(RngStream(3), 20_000)
        fitted = LongTailSizeDistribution.fit(sizes)
        assert fitted.body_median == pytest.approx(truth.body_median, rel=0.15)
        assert fitted.body_sigma == pytest.approx(truth.body_sigma, rel=0.3)

    def test_fitted_resample_matches_quantiles(self):
        """Round trip: fit on a sample, resample, compare quantiles."""
        truth = TEXT_400K_DIST
        observed = truth.sample(RngStream(4), 20_000)
        fitted = LongTailSizeDistribution.fit(observed)
        resampled = fitted.sample(RngStream(5), 20_000)
        for q in (0.25, 0.5, 0.75, 0.9):
            a = float(np.quantile(observed, q))
            b = float(np.quantile(resampled, q))
            assert b == pytest.approx(a, rel=0.25)

    def test_tail_mass_estimated(self):
        sizes = TEXT_400K_DIST.sample(RngStream(6), 20_000)
        fitted = LongTailSizeDistribution.fit(sizes, tail_quantile=0.95)
        assert fitted.tail_weight == pytest.approx(0.05, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            LongTailSizeDistribution.fit([1.0] * 5)
        with pytest.raises(ValueError):
            LongTailSizeDistribution.fit([0.0] * 20)
        with pytest.raises(ValueError):
            LongTailSizeDistribution.fit([1.0] * 20, tail_quantile=0.4)


class TestCatalogueUtilities:
    def test_filter(self):
        cat = catalogue_of([10, 2000, 30, 4000])
        big = cat.filter(lambda f: f.size > 100)
        assert [f.size for f in big] == [2000, 4000]

    def test_sorted_by_size(self):
        cat = catalogue_of([30, 10, 20])
        assert [f.size for f in cat.sorted_by_size()] == [10, 20, 30]
        assert [f.size for f in cat.sorted_by_size(descending=True)] == [30, 20, 10]

    def test_sorted_copy_leaves_original(self):
        cat = catalogue_of([30, 10])
        cat.sorted_by_size()
        assert [f.size for f in cat] == [30, 10]

    def test_concat(self):
        a = catalogue_of([1, 2])
        b = Catalogue([VirtualFile(path="g0", size=3, stats=TextStats(),
                                   content_seed=0)])
        merged = Catalogue.concat([a, b])
        assert merged.total_size == 6
        assert len(merged) == 3

    def test_concat_duplicate_paths_rejected(self):
        a = catalogue_of([1])
        with pytest.raises(ValueError):
            Catalogue.concat([a, a])


class TestUnitFormatting:
    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(1_500_000) == "1.5 MB"
        assert fmt_bytes(43_000_000_000) == "43 GB"
        assert fmt_bytes(2_500) == "2.5 kB"

    def test_fmt_seconds(self):
        assert fmt_seconds(2.5) == "2.5s"
        assert fmt_seconds(125) == "2m 05s"
        assert fmt_seconds(3725) == "1h 02m 05s"
