"""Acceptance tests for the broker-stack capacity matrix and its CLI.

The acceptance criterion of the capacity-broker refactor: DAG-on-spot
with warm cross-stage leases keeps the campaign miss budget (≤ 10 %) at
a lower mean cost than DAG-on-demand in every interruption regime.
"""

import pytest

from repro.cli import main as cli_main
from repro.experiments.exp_matrix import (
    REGIMES,
    STACKS,
    evaluate_matrix_slos,
    matrix_sweep,
    run_cell,
)


class TestRunCell:
    def test_repeat_run_equality(self):
        a = run_cell("spot", "fanout", "eviction-storm", seed=11)
        b = run_cell("spot", "fanout", "eviction-storm", seed=11)
        assert a == b

    def test_unknown_stack_and_regime_raise(self):
        with pytest.raises(ValueError):
            run_cell("mainframe", "linear", "calm")
        with pytest.raises(KeyError):
            run_cell("fleet", "linear", "hurricane")

    def test_fleet_control_prices_at_parity_when_calm(self):
        cell = run_cell("fleet", "linear", "calm", seed=11)
        assert cell["cost_ratio"] == 1.0

    def test_spot_undercuts_on_demand_in_the_storm(self):
        cell = run_cell("spot-lease", "fanout", "eviction-storm", seed=11)
        assert cell["cost_ratio"] < 1.0
        assert cell["interruptions"] > 0           # the storm actually landed
        assert cell["miss_rate"] <= 0.10


class TestSweepAcceptance:
    @pytest.fixture(scope="class")
    def sweep(self):
        return matrix_sweep(seeds=(11,))

    @pytest.mark.chaos
    def test_spot_stacks_meet_slos_in_every_regime(self, sweep):
        _, stats = sweep
        reports = evaluate_matrix_slos(stats)
        assert set(reports) == set(STACKS)
        for stack in ("spot", "spot-lease"):
            assert reports[stack].ok, stack
        for g in stats["grid"]:
            if g["stack"] in ("spot", "spot-lease"):
                assert g["miss_rate"] <= 0.10, g
                assert g["mean_cost_ratio"] < 1.0, g

    @pytest.mark.chaos
    def test_fleet_control_fails_only_the_cost_objective(self, sweep):
        _, stats = sweep
        report = evaluate_matrix_slos(stats)["fleet"]
        by_name = {r.objective.name: r.ok for r in report.results}
        assert by_name["miss-rate"]
        assert not by_name["cost-vs-on-demand"]    # ratio 1.0 > 0.99

    @pytest.mark.chaos
    def test_grid_covers_every_stack_regime_pair(self, sweep):
        _, stats = sweep
        pairs = {(g["stack"], g["regime"]) for g in stats["grid"]}
        assert pairs == {(s, r) for s in STACKS for r in REGIMES}

    @pytest.mark.chaos
    def test_figure_carries_miss_and_cost_axes(self, sweep):
        fig, _ = sweep
        names = {s.label for s in fig.series}
        assert "miss rate [spot-lease]" in names
        assert "cost vs on-demand [fleet]" in names


class TestMatrixCli:
    def test_single_cell_sweep_runs(self, capsys):
        assert cli_main(["matrix", "--stack", "spot", "--shape", "fanout",
                         "--regime", "eviction-storm", "--seeds", "1",
                         "--slo", "--no-ledger"]) == 0
        out = capsys.readouterr().out
        assert "spot" in out and "stack=spot" in out

    def test_unknown_stack_is_one_line_error(self, caplog):
        assert cli_main(["matrix", "--stack", "mainframe",
                         "--no-ledger"]) == 2
