"""Tests for the deterministic RNG stream hierarchy."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.random import RngStream, stable_seed


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed(42, "corpus") == stable_seed(42, "corpus")

    def test_name_sensitivity(self):
        assert stable_seed(42, "corpus") != stable_seed(42, "cloud")

    def test_seed_sensitivity(self):
        assert stable_seed(42, "corpus") != stable_seed(43, "corpus")

    @given(st.integers(min_value=0, max_value=2**63), st.text(max_size=40))
    def test_range_is_uint64(self, seed, name):
        s = stable_seed(seed, name)
        assert 0 <= s < 2**64


class TestRngStream:
    def test_reproducible_draws(self):
        a = RngStream(7).uniform()
        b = RngStream(7).uniform()
        assert a == b

    def test_fork_is_pure(self):
        """Forking must not consume parent state, in any order."""
        p1 = RngStream(9)
        c_first = p1.fork("x")
        parent_draw_after_fork = p1.uniform()

        p2 = RngStream(9)
        parent_draw_before_fork = p2.uniform()
        c_second = p2.fork("x")

        assert parent_draw_after_fork == parent_draw_before_fork
        assert c_first.uniform() == c_second.uniform()

    def test_fork_independence(self):
        parent = RngStream(1)
        assert parent.fork("a").uniform() != parent.fork("b").uniform()

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngStream(-1)

    def test_integer_inclusive_bounds(self):
        s = RngStream(3)
        draws = {s.integer(1, 3) for _ in range(200)}
        assert draws == {1, 2, 3}

    def test_integer_empty_range(self):
        with pytest.raises(ValueError):
            RngStream(0).integer(5, 4)

    def test_choice_weighted(self):
        s = RngStream(11)
        picks = [s.choice(["a", "b"], weights=[0.0, 1.0]) for _ in range(50)]
        assert set(picks) == {"b"}

    def test_choice_empty(self):
        with pytest.raises(ValueError):
            RngStream(0).choice([])

    def test_choice_weight_shape_mismatch(self):
        with pytest.raises(ValueError):
            RngStream(0).choice(["a", "b"], weights=[1.0])

    def test_sample_indices_distinct(self):
        idx = RngStream(5).sample_indices(10, 10)
        assert sorted(idx) == list(range(10))

    def test_sample_indices_too_many(self):
        with pytest.raises(ValueError):
            RngStream(5).sample_indices(3, 4)

    def test_shuffle_is_permutation(self):
        items = list(range(20))
        RngStream(8).shuffle(items)
        assert sorted(items) == list(range(20))

    def test_vector_draws_shapes(self):
        s = RngStream(2)
        assert s.normals(0, 1, 5).shape == (5,)
        assert s.lognormals(0, 1, 4).shape == (4,)
        assert s.uniforms(0, 1, 3).shape == (3,)
        assert s.paretos(1.5, 6).shape == (6,)

    @given(st.integers(min_value=0, max_value=2**32))
    def test_lognormal_positive(self, seed):
        assert RngStream(seed).lognormal(0.0, 1.0) > 0

    def test_distribution_sanity(self):
        s = RngStream(123)
        xs = s.normals(10.0, 2.0, 20_000)
        assert abs(float(np.mean(xs)) - 10.0) < 0.1
        assert abs(float(np.std(xs)) - 2.0) < 0.1
