"""History persistence round-trips and text/tagger realism checks."""

import pytest

from repro.apps import PosTaggerApplication
from repro.corpus import text_400k_like
from repro.perfmodel import RunHistory


class TestHistoryPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        h = RunHistory()
        h.record("grep", 1000, 1.5, instance_id="i-1", n_units=3)
        h.record("postag", 2000, 9.0)
        path = tmp_path / "history.jsonl"
        h.save(path)
        loaded = RunHistory.load(path)
        assert len(loaded) == 2
        assert loaded.for_app("grep")[0].instance_id == "i-1"
        assert loaded.for_app("postag")[0].seconds == 9.0

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        RunHistory().save(path)
        assert len(RunHistory.load(path)) == 0

    def test_corrupt_line_reported_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"app": "grep", "volume": 10, "seconds": 1.0}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            RunHistory.load(path)

    def test_invalid_record_rejected_on_load(self, tmp_path):
        path = tmp_path / "neg.jsonl"
        path.write_text('{"app": "grep", "volume": -5, "seconds": 1.0}\n')
        with pytest.raises(ValueError):
            RunHistory.load(path)


class TestTagDistributionRealism:
    """The tagger's output on generated news text should look like English:
    nouns dominate the open class, determiners and prepositions are
    frequent, and every token receives a tag."""

    @pytest.fixture(scope="class")
    def tag_counts(self):
        units = list(text_400k_like(scale=5e-4))[:60]
        result = PosTaggerApplication().run_native(units)
        return result.outputs["tag_counts"], result.work

    def test_nouns_most_common_open_class(self, tag_counts):
        counts, _ = tag_counts
        open_class = {t: counts.get(t, 0) for t in ("NN", "NNS", "VB", "VBD", "JJ", "RB")}
        assert max(open_class, key=open_class.get) in ("NN", "NNS")

    def test_determiners_frequent(self, tag_counts):
        counts, work = tag_counts
        dt_rate = counts.get("DT", 0) / work.tokens
        # English: ~8-12% determiners; generated text is determiner-heavy
        assert 0.05 < dt_rate < 0.30

    def test_prepositions_present(self, tag_counts):
        counts, work = tag_counts
        assert counts.get("IN", 0) / work.tokens > 0.03

    def test_every_token_tagged(self, tag_counts):
        counts, work = tag_counts
        assert sum(counts.values()) == work.tokens

    def test_punct_matches_sentence_count_roughly(self, tag_counts):
        counts, work = tag_counts
        # at least one terminal punctuation token per sentence
        assert counts.get("PUNCT", 0) >= work.sentences * 0.8
