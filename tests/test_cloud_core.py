"""Tests for cloud types, instances, billing, EBS and S3."""

import pytest

from repro.cloud import (
    Cloud,
    EbsVolume,
    Instance,
    InstanceState,
    PlacementModel,
    S3Store,
    SMALL,
    US_EAST,
)
from repro.cloud.billing import BillingLedger, billable_hours
from repro.cloud.ebs import EbsError
from repro.cloud.instance import HeterogeneityModel, InstanceError
from repro.cloud.s3 import MAX_OBJECT_SIZE, S3Error
from repro.cloud.types import InstanceType
from repro.sim.random import RngStream
from repro.units import GB, HOUR


class TestTypes:
    def test_small_instance_matches_paper(self):
        assert SMALL.memory_gb == 1.7
        assert SMALL.compute_units == 1.0
        assert SMALL.local_storage_gb == 160
        assert SMALL.hourly_rate == 0.085

    def test_region_zones(self):
        assert len(US_EAST.zones) == 4
        assert US_EAST.zone("a").name == "us-east-1a"

    def test_unknown_zone(self):
        with pytest.raises(KeyError):
            US_EAST.zone("z")

    def test_bad_type_rejected(self):
        with pytest.raises(ValueError):
            InstanceType("x", 0, 1, 1, 0.1)


class TestBillableHours:
    def test_partial_hour_rounds_up(self):
        assert billable_hours(1.0) == 1
        assert billable_hours(3599.0) == 1
        assert billable_hours(3601.0) == 2

    def test_exact_hours(self):
        assert billable_hours(7200.0) == 2

    def test_zero(self):
        assert billable_hours(0.0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            billable_hours(-1.0)


class TestBillingLedger:
    def test_cost_accumulates(self):
        led = BillingLedger()
        led.record("i-1", "m1.small", 0.0, 1800.0, 0.085)
        led.record("i-2", "m1.small", 0.0, 7200.0, 0.085)
        assert led.total_instance_hours == 3
        assert led.total_cost == pytest.approx(3 * 0.085)

    def test_bad_interval(self):
        with pytest.raises(ValueError):
            BillingLedger().record("i", "t", 10.0, 5.0, 0.1)

    def test_summary(self):
        led = BillingLedger()
        led.record("i-1", "m1.small", 0.0, 10.0, 0.085)
        s = led.summary()
        assert s["instances"] == 1 and s["instance_hours"] == 1


class TestHeterogeneity:
    def test_most_instances_good(self):
        model = HeterogeneityModel()
        rng = RngStream(1)
        factors = [model.draw_factor(rng.fork(str(i))) for i in range(500)]
        good = sum(1 for f in factors if f > 0.9)
        assert good / len(factors) > 0.75

    def test_spread_reaches_4x(self):
        model = HeterogeneityModel()
        rng = RngStream(2)
        factors = [model.draw_factor(rng.fork(str(i))) for i in range(500)]
        assert max(factors) / min(factors) > 3.0


class TestInstanceLifecycle:
    def test_launch_wait_running(self):
        cloud = Cloud(seed=3)
        inst = cloud.launch_instance()
        assert inst.state is InstanceState.RUNNING
        assert cloud.now == pytest.approx(inst.boot_delay)

    def test_boot_delay_in_range(self):
        cloud = Cloud(seed=3)
        inst = cloud.launch_instance()
        lo, hi = cloud.boot_delay_range
        assert lo <= inst.boot_delay <= hi

    def test_launch_nowait_pending(self):
        cloud = Cloud(seed=3)
        inst = cloud.launch_instance(wait=False)
        assert inst.state is InstanceState.PENDING
        cloud.wait_until_running(inst)
        assert inst.state is InstanceState.RUNNING

    def test_cannot_start_before_boot(self):
        cloud = Cloud(seed=3)
        inst = cloud.launch_instance(wait=False)
        with pytest.raises(InstanceError):
            inst.mark_running(cloud.now)

    def test_double_terminate_rejected(self):
        cloud = Cloud(seed=3)
        inst = cloud.launch_instance()
        cloud.terminate_instance(inst)
        with pytest.raises(InstanceError):
            inst.terminate(cloud.now)

    def test_terminate_bills_partial_hour_as_full(self):
        cloud = Cloud(seed=3)
        inst = cloud.launch_instance()
        cloud.advance(60.0)
        cloud.terminate_instance(inst)
        assert cloud.ledger.total_instance_hours == 1
        assert cloud.ledger.total_cost == pytest.approx(0.085)

    def test_pending_time_not_billed(self):
        """Only RUNNING time is billed (§3.1)."""
        cloud = Cloud(seed=3)
        inst = cloud.launch_instance()  # boots for ~2-3 min
        cloud.advance(HOUR - inst.boot_delay + 1.0)  # running just over 1h-boot
        cloud.terminate_instance(inst)
        rec = cloud.ledger.records[0]
        assert rec.start == pytest.approx(inst.boot_delay)
        assert rec.hours == 1

    def test_finalize_billing_covers_running(self):
        cloud = Cloud(seed=3)
        cloud.launch_instance()
        cloud.launch_instance()
        cloud.advance(100.0)
        cloud.finalize_billing()
        assert len(cloud.ledger.records) == 2

    def test_instance_quality_deterministic(self):
        a = Cloud(seed=7).launch_instance()
        b = Cloud(seed=7).launch_instance()
        assert a.cpu_factor == b.cpu_factor and a.io_factor == b.io_factor


class TestEbs:
    def make(self, seed=5):
        cloud = Cloud(seed=seed)
        inst = cloud.launch_instance()
        vol = cloud.create_volume(100, zone=inst.zone)
        return cloud, inst, vol

    def test_attach_detach(self):
        cloud, inst, vol = self.make()
        vol.attach(inst)
        assert vol.attached_to is inst
        assert vol in inst.attached_volumes
        vol.detach()
        assert vol.attached_to is None
        assert vol not in inst.attached_volumes

    def test_double_attach_rejected(self):
        cloud, inst, vol = self.make()
        vol.attach(inst)
        other = cloud.launch_instance()
        with pytest.raises(EbsError):
            vol.attach(other)

    def test_cross_zone_attach_rejected(self):
        cloud, inst, vol = self.make()
        other_zone = cloud.region.zones[1]
        inst2 = cloud.launch_instance(zone=other_zone)
        with pytest.raises(EbsError):
            vol.attach(inst2)

    def test_attach_requires_running(self):
        cloud, inst, vol = self.make()
        pend = cloud.launch_instance(wait=False)
        with pytest.raises(InstanceError):
            vol.attach(pend)

    def test_terminate_detaches_volumes(self):
        cloud, inst, vol = self.make()
        vol.attach(inst)
        cloud.terminate_instance(inst)
        assert vol.attached_to is None

    def test_swap_volume_survives_instance(self):
        """§7: replace a poor instance without data transfer."""
        cloud, inst, vol = self.make()
        vol.attach(inst)
        vol.store("probes/run1")
        factor_before = vol.placement_factor("probes/run1")
        replacement = cloud.launch_instance(zone=inst.zone)
        cloud.swap_volume(vol, replacement)
        cloud.terminate_instance(inst)
        assert vol.attached_to is replacement
        assert vol.placement_factor("probes/run1") == factor_before

    def test_placement_factor_stable(self):
        _, _, vol = self.make()
        f1 = vol.store("data/a")
        f2 = vol.store("data/a")
        assert f1 == f2

    def test_clone_directories_roll_new_placement(self):
        """§5.1: clones of a directory can differ by up to 3x."""
        model = PlacementModel(p_bad=0.5, bad_range=(2.0, 3.0))
        rng = RngStream(11)
        factors = {model.factor(rng.fork(str(i)).seed, f"clone{i}") for i in range(40)}
        assert len(factors) > 1
        assert max(factors) <= 3.0 and min(factors) == 1.0

    def test_unknown_directory_rejected(self):
        _, _, vol = self.make()
        with pytest.raises(EbsError):
            vol.placement_factor("never/stored")

    def test_bad_volume_size(self):
        with pytest.raises(EbsError):
            EbsVolume(volume_id="v", size_gb=0, zone=US_EAST.zones[0])


class TestS3:
    def test_put_get(self):
        s3 = S3Store(region_name="us-east")
        s3.put("results/part0", 1000)
        assert s3.get("results/part0").size == 1000
        assert "results/part0" in s3 and len(s3) == 1

    def test_object_size_limit(self):
        s3 = S3Store(region_name="us-east")
        with pytest.raises(S3Error):
            s3.put("big", MAX_OBJECT_SIZE + 1)
        s3.put("edge", MAX_OBJECT_SIZE)  # exactly 5 GB is allowed

    def test_missing_key(self):
        with pytest.raises(S3Error):
            S3Store(region_name="r").get("nope")

    def test_transfer_time_scales_with_size(self):
        s3 = S3Store(region_name="r", latency_sigma=0.0)
        small = s3.transfer_time(1000, RngStream(1))
        big = s3.transfer_time(1 * GB, RngStream(1))
        assert big > 10 * small

    def test_retrieval_fewer_objects_faster(self):
        """§1: less segmented output retrieves faster at equal volume."""
        s3 = S3Store(region_name="r", latency_sigma=0.0)
        for i in range(100):
            s3.put(f"frag/{i}", 1_000_00)
        s3.put("merged", 100 * 1_000_00)
        t_frag = s3.retrieval_time([f"frag/{i}" for i in range(100)], RngStream(2))
        t_merged = s3.retrieval_time(["merged"], RngStream(2))
        assert t_merged < t_frag

    def test_delete(self):
        s3 = S3Store(region_name="r")
        s3.put("k", 1)
        s3.delete("k")
        assert "k" not in s3
