"""Targeted tests for corners the broader suites leave uncovered."""

import numpy as np
import pytest

from repro.apps import (
    ExtractCostProfile,
    ExtractorApplication,
    GrepApplication,
    GrepCostProfile,
    PosCostProfile,
    PosTaggerApplication,
    UnitMeta,
    as_unit_meta,
)
from repro.cloud import Cloud, Workload
from repro.cloud.spot import SpotMarket
from repro.core import TextWorkflow, WorkflowStage, execute_workflow
from repro.corpus import html_18mil_like
from repro.perfmodel.regression import XLogXPredictor, fit_affine
from repro.sim.random import RngStream
from repro.units import HOUR
from repro.vfs import Segment, TextStats, VirtualFile


class TestWorkflowFanIn:
    def test_fan_in_execution_merges_inputs(self):
        def affine(a, b):
            x = np.array([1e5, 1e6, 1e7])
            return fit_affine(x, a + b * x)

        wf = TextWorkflow()
        wf.add_stage(WorkflowStage(
            "left", Workload("grep", GrepApplication("alpha"), GrepCostProfile()),
            affine(0.2, 1.3e-8), output_ratio=0.3))
        wf.add_stage(WorkflowStage(
            "right", Workload("grep", GrepApplication("beta"), GrepCostProfile()),
            affine(0.2, 1.3e-8), output_ratio=0.2))
        wf.add_stage(WorkflowStage(
            "merge", Workload("extract", ExtractorApplication(), ExtractCostProfile()),
            affine(0.3, 3e-8)), after=["left", "right"])
        cat = html_18mil_like(scale=1e-5)
        report = execute_workflow(Cloud(seed=4), wf, cat, 3 * HOUR)
        v_merge = sum(r.volume for r in report.stage_reports["merge"].runs)
        assert v_merge == pytest.approx(int(0.3 * cat.total_size)
                                        + int(0.2 * cat.total_size), rel=0.01)


class TestSpotStartPrice:
    def test_start_price_honoured(self):
        m = SpotMarket(rng=RngStream(2), start_price=0.09)
        assert m.price(0) == 0.09

    def test_reversion_pulls_toward_mean(self):
        m = SpotMarket(rng=RngStream(2), start_price=0.2, volatility=0.0)
        prices = m.prices(30)
        assert prices[-1] == pytest.approx(m.mean_price, rel=0.05)
        assert all(a >= b for a, b in zip(prices, prices[1:]))

    def test_market_validation(self):
        with pytest.raises(ValueError):
            SpotMarket(rng=RngStream(1), reversion=0.0)
        with pytest.raises(ValueError):
            SpotMarket(rng=RngStream(1), mean_price=0.0)


class TestXLogXCorners:
    def test_inverse_with_zero_a_falls_back_to_power(self):
        p = XLogXPredictor(a=0.0, b=2.0)
        p.x = np.array([1.0, 2.0])
        p.y = p._f(p.x)
        assert p.inverse(p.predict(9.0)) == pytest.approx(9.0, rel=1e-9)

    def test_inverse_rejects_nonpositive(self):
        from repro.perfmodel.regression import FitError

        p = XLogXPredictor(a=0.1, b=0.5)
        with pytest.raises(FitError):
            p.inverse(0.0)


class TestUnitMetaValidation:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnitMeta(size=-1, stats=TextStats())

    def test_as_unit_meta_rejects_foreign_types(self):
        with pytest.raises(TypeError):
            as_unit_meta("not a unit")

    def test_as_unit_meta_on_segment_aggregates(self):
        a = VirtualFile(path="a", size=100,
                        stats=TextStats(avg_sentence_words=10.0), content_seed=0)
        b = VirtualFile(path="b", size=300,
                        stats=TextStats(avg_sentence_words=30.0), content_seed=1)
        meta = as_unit_meta(Segment("s", (a, b)))
        assert meta.n_members == 2
        assert meta.stats.avg_sentence_words == pytest.approx(25.0)


class TestWorkAccountValidation:
    def test_negative_counter_rejected(self):
        from repro.apps import WorkAccount

        w = WorkAccount(files_opened=-1)
        with pytest.raises(ValueError):
            w.validate()

    def test_addition(self):
        from repro.apps import WorkAccount

        total = WorkAccount(tokens=3, context_ops=1.5) + WorkAccount(tokens=4)
        assert total.tokens == 7 and total.context_ops == 1.5


class TestProfilesMatchesKwargParity:
    def test_pos_profile_accepts_matches(self):
        """Interface parity: both profiles take the matches kwarg."""
        p = PosCostProfile()
        meta = UnitMeta(size=1000, stats=TextStats())
        assert p.breakdown([meta], matches=5).total == p.breakdown([meta]).total


class TestInstanceRunBoot:
    def test_missed_with_boot_included(self):
        from repro.runner import InstanceRun

        run = InstanceRun(instance_id="i", n_units=1, volume=1,
                          boot_delay=200.0, duration=3500.0, predicted=3000.0)
        assert not run.missed(3600.0)
        assert run.missed(3600.0, include_boot=True)
