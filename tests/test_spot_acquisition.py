"""Spot provisioning: ladder decisions, replay determinism, billing bounds.

Three layers of guarantees:

* the :class:`~repro.resilience.spot.SpotLadder` walks its rungs in
  order and escalates exactly when the deadline buffer says so (white-box
  price injection pins each rung);
* an identical ``(seed, trace)`` pair replays the whole spot run
  bit-for-bit — reports, billing ledger, stats and the engine clock;
* 2010 spot billing never exceeds the on-demand ceil-hour bill while the
  bid holds (a hypothesis property over random segments, plus the
  campaign-level check on a calm cloud).
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chaos import FaultInjector, get_spot_regime
from repro.cloud import Cloud, SpotMarketBoard
from repro.cloud.types import LARGE, SMALL
from repro.resilience import (
    SpotFallbackPolicy,
    SpotLadder,
    buffer_seconds,
)
from repro.runner import execute_plan, execute_plan_spot
from repro.sim.random import RngStream
from repro.units import HOUR


def _flat_board(zones=("za", "zb"), mean=0.04):
    """A board with zero volatility: every price is exactly ``mean``."""
    return SpotMarketBoard(RngStream(1), zones, volatility=0.0,
                           mean_price=mean)


class TestBuffer:
    def test_default_buffer_arithmetic(self):
        # 1.25 x 180 s restart + 120 s warning window
        assert buffer_seconds(180.0) == pytest.approx(345.0)
        assert SpotFallbackPolicy().buffer_seconds() == pytest.approx(345.0)

    def test_safety_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            buffer_seconds(180.0, safety_factor=0.9)

    def test_at_risk_is_buffered_not_bare(self):
        p = SpotFallbackPolicy()
        assert not p.at_risk(1000.0, 1346.0)
        assert p.at_risk(1000.0, 1344.0)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SpotFallbackPolicy(bid=0.0)
        with pytest.raises(ValueError):
            SpotFallbackPolicy(max_interruptions=0)


class TestLadderRungs:
    def _decide(self, ladder, **kw):
        kw.setdefault("now", 10.0)
        kw.setdefault("zone", "za")
        kw.setdefault("remaining_predicted", 100.0)
        kw.setdefault("deadline_remaining", 50_000.0)
        return ladder.decide(**kw)

    def test_rung1_rebids_a_different_zone(self):
        d = self._decide(SpotLadder(_flat_board()))
        assert d.rung == "rebid-az" and d.zone == "zb"
        assert d.itype == SMALL and d.resume_at == 10.0

    def test_rung2_retypes_when_no_other_zone_is_affordable(self):
        board = _flat_board()
        board.market("zb")._prices = [0.2]     # small market spiked
        d = self._decide(SpotLadder(board))
        assert d.rung == "retype" and d.itype == LARGE

    def test_rung3_queues_for_the_earliest_affordable_hour(self):
        board = _flat_board(zones=("za",))
        board.market("za")._prices = [0.2, 0.2, 0.03]
        board.market("za", LARGE)._prices = [0.9]
        d = self._decide(SpotLadder(board))
        assert d.rung == "queue" and d.zone == "za"
        assert d.resume_at == 2 * HOUR
        assert d.queued_seconds == pytest.approx(2 * HOUR - 10.0)

    def test_queue_wait_that_risks_the_deadline_escalates(self):
        board = _flat_board(zones=("za",))
        board.market("za")._prices = [0.2, 0.2, 0.03]
        board.market("za", LARGE)._prices = [0.9]
        d = self._decide(SpotLadder(board), deadline_remaining=7500.0)
        assert d.rung == "on-demand"

    def test_preemptive_escalation_beats_every_rung(self):
        d = self._decide(SpotLadder(_flat_board()),
                         remaining_predicted=2000.0,
                         deadline_remaining=2200.0)
        assert d.rung == "on-demand"

    def test_ladder_off_waits_in_its_own_zone(self):
        ladder = SpotLadder(_flat_board(), policy=SpotFallbackPolicy(
            ladder=False, checkpoint=False, escalate=False))
        d = self._decide(ladder)
        assert d.rung == "wait-same-zone" and d.zone == "za"
        assert d.resume_at == HOUR   # next market hour, same zone

    def test_give_up_when_nothing_is_ever_affordable(self):
        board = SpotMarketBoard(RngStream(1), ("za",), volatility=0.0,
                                mean_price=0.2, floor=0.2)
        ladder = SpotLadder(board, policy=SpotFallbackPolicy(escalate=False))
        assert self._decide(ladder).rung == "give-up"

    def test_initial_zone_is_the_cheapest_affordable(self):
        board = _flat_board()
        board.market("za")._prices = [0.03]
        board.market("zb")._prices = [0.02]
        assert SpotLadder(board).initial_zone(0.0) == "zb"

    def test_initial_zone_none_when_bid_covers_nothing(self):
        ladder = SpotLadder(_flat_board(),
                            policy=SpotFallbackPolicy(bid=0.001))
        assert ladder.initial_zone(0.0) is None


def _spot_run(seed, *, regime=None, resilience=True):
    """One full campaign on spot capacity; returns comparable state."""
    from repro.experiments.exp_chaos import _campaign

    chaos = None
    if regime is not None:
        chaos = FaultInjector([get_spot_regime(regime).scenario(seed)],
                              seed=seed)
    cloud = Cloud(seed=seed, chaos=chaos)
    wl, plan = _campaign(seed)
    policy = (SpotFallbackPolicy() if resilience else
              SpotFallbackPolicy(ladder=False, checkpoint=False,
                                 escalate=False))
    result = execute_plan_spot(cloud, wl, plan, policy=policy)
    return {
        "runs": [(r.instance_id, r.boot_delay, r.duration)
                 for r in result.report.runs],
        "failed": result.report.n_failed,
        "stats": result.stats.summary(),
        "ledger": [(u.instance_id, u.start, u.end, u.hourly_rate, u.cost)
                   for u in cloud.ledger.records],
        "clock": cloud.now,
        "timeline": result.timeline,
    }


class TestReplayDeterminism:
    @pytest.mark.chaos
    def test_same_seed_and_trace_bit_identical(self):
        assert _spot_run(23, regime="eviction-storm") == \
            _spot_run(23, regime="eviction-storm")

    @pytest.mark.chaos
    def test_same_seed_no_trace_bit_identical(self):
        assert _spot_run(23) == _spot_run(23)

    @pytest.mark.chaos
    def test_naive_policy_replays_too(self):
        assert _spot_run(23, regime="eviction-storm", resilience=False) == \
            _spot_run(23, regime="eviction-storm", resilience=False)

    @pytest.mark.chaos
    def test_trace_changes_the_run(self):
        assert _spot_run(23, regime="eviction-storm") != _spot_run(23)


class TestSpotNeverOvercharges:
    @given(seed=st.integers(0, 400),
           start=st.integers(0, 4 * int(HOUR)),
           dur=st.integers(1, 4 * int(HOUR)))
    @settings(max_examples=150, deadline=None)
    def test_uninterrupted_segment_bills_at_most_ceil_hour_od(
            self, seed, start, dur):
        """While a bid of the on-demand rate holds, every charged spot
        hour costs at most that rate — so any zero-interruption segment
        bills no more than the on-demand ceil-hour equivalent."""
        board = SpotMarketBoard(RngStream(seed), ("za",))
        bid = SMALL.hourly_rate
        start_f, end_f = float(start), float(start + dur)
        assume(board.affordable("za", int(start_f // HOUR), bid))
        hit = board.next_crossing("za", after=start_f, bid=bid)
        assume(hit is None or hit.at >= end_f)
        spot = sum(p for _, _, p in board.bill_segment("za", start_f, end_f))
        hours = -(-dur // int(HOUR))           # ceil
        assert spot <= hours * SMALL.hourly_rate + 1e-9

    @pytest.mark.chaos
    def test_calm_campaign_bills_below_on_demand(self):
        from repro.experiments.exp_chaos import _campaign

        for seed in (11, 23):
            spot = _spot_run(seed)
            od = Cloud(seed=seed)
            wl, plan = _campaign(seed)
            execute_plan(od, wl, plan)
            assert spot["stats"]["interruptions"] == 0
            total = (spot["stats"]["spot_cost_usd"]
                     + spot["stats"]["on_demand_cost_usd"])
            assert total <= od.ledger.total_cost
