"""Property tests: the indexed engine is byte-identical to the reference.

Every heuristic rewritten on :class:`~repro.packing.index.FreeSpaceIndex`
must place every item into exactly the same bin, in the same order, with the
same bin capacities, as the original O(n·B) implementations preserved in
:mod:`repro.packing.reference` — across random catalogues, capacities, bin
counts and both ``preserve_order`` settings.  Each result is additionally
checked with :func:`validate_packing`.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packing import (
    FreeSpaceIndex,
    Item,
    PackingCache,
    first_fit,
    first_fit_decreasing,
    first_fit_layout,
    pack_into_n_bins,
    subset_sum_first_fit,
    uniform_bins,
    validate_packing,
)
from repro.packing import reference


def items_of(sizes) -> list[Item]:
    return [Item(key=f"f{i:04d}", size=s) for i, s in enumerate(sizes)]


def assert_identical(got, want):
    """Bin-by-bin equality: capacity, load, and member keys in order."""
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.capacity == w.capacity
        assert g.used == w.used
        assert [it.key for it in g.items] == [it.key for it in w.items]


size_lists = st.lists(
    st.one_of(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=5000),
    ),
    min_size=0,
    max_size=120,
)
capacities = st.integers(min_value=1, max_value=4000)
bin_counts = st.integers(min_value=1, max_value=15)


class TestFirstFitEquivalence:
    @given(sizes=size_lists, capacity=capacities)
    @settings(max_examples=150, deadline=None)
    def test_first_fit(self, sizes, capacity):
        items = items_of(sizes)
        got = first_fit(items, capacity)
        assert_identical(got, reference.first_fit(items, capacity))
        validate_packing(items, got)

    @given(sizes=size_lists, capacity=capacities)
    @settings(max_examples=100, deadline=None)
    def test_first_fit_decreasing(self, sizes, capacity):
        items = items_of(sizes)
        got = first_fit_decreasing(items, capacity)
        assert_identical(got, reference.first_fit_decreasing(items, capacity))
        validate_packing(items, got)

    @given(sizes=size_lists, capacity=capacities)
    @settings(max_examples=100, deadline=None)
    def test_duplicate_sizes_tie_break(self, sizes, capacity):
        # Heavy duplication stresses the (-size, key) tie-break.
        items = items_of([s % 7 for s in sizes])
        got = first_fit_decreasing(items, capacity)
        assert_identical(got, reference.first_fit_decreasing(items, capacity))


class TestSubsetSumEquivalence:
    @given(
        sizes=size_lists,
        unit=capacities,
        preserve_order=st.booleans(),
    )
    @settings(max_examples=200, deadline=None)
    def test_subset_sum(self, sizes, unit, preserve_order):
        items = items_of(sizes)
        got = subset_sum_first_fit(items, unit, preserve_order=preserve_order)
        want = reference.subset_sum_first_fit(
            items, unit, preserve_order=preserve_order
        )
        assert_identical(got, want)
        validate_packing(items, got)


class TestPackIntoNBinsEquivalence:
    @given(sizes=size_lists, n_bins=bin_counts, capacity=capacities)
    @settings(max_examples=200, deadline=None)
    def test_pack_into_n_bins(self, sizes, n_bins, capacity):
        items = items_of(sizes)
        got = pack_into_n_bins(items, n_bins, capacity)
        assert_identical(got, reference.pack_into_n_bins(items, n_bins, capacity))
        validate_packing(items, got)

    @given(sizes=size_lists, n_bins=bin_counts)
    @settings(max_examples=100, deadline=None)
    def test_tight_capacity_forces_overflow(self, sizes, n_bins):
        # Capacity chosen so a large share of items overflow into the spill
        # path, which must match the reference's min(used) scan exactly.
        items = items_of(sizes)
        capacity = max(1, sum(sizes) // (2 * n_bins) or 1)
        got = pack_into_n_bins(items, n_bins, capacity)
        assert_identical(got, reference.pack_into_n_bins(items, n_bins, capacity))
        validate_packing(items, got)


class TestUniformEquivalence:
    @given(sizes=size_lists, n_bins=bin_counts, preserve_order=st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_uniform(self, sizes, n_bins, preserve_order):
        items = items_of(sizes)
        got = uniform_bins(items, n_bins, preserve_order=preserve_order)
        want = reference.uniform_bins(items, n_bins, preserve_order=preserve_order)
        assert_identical(got, want)
        validate_packing(items, got)


class TestColumnarPaths:
    """(keys, sizes) columns and *_layout kernels agree with the object API."""

    @given(sizes=size_lists, capacity=capacities)
    @settings(max_examples=50, deadline=None)
    def test_column_input_matches_items(self, sizes, capacity):
        items = items_of(sizes)
        keys = [it.key for it in items]
        assert_identical(
            first_fit((keys, sizes), capacity), first_fit(items, capacity)
        )
        assert_identical(
            subset_sum_first_fit((keys, sizes), capacity, preserve_order=False),
            subset_sum_first_fit(items, capacity, preserve_order=False),
        )
        assert_identical(
            uniform_bins((keys, sizes), 5, preserve_order=False),
            uniform_bins(items, 5, preserve_order=False),
        )

    @given(sizes=size_lists, capacity=capacities)
    @settings(max_examples=50, deadline=None)
    def test_layout_matches_bins(self, sizes, capacity):
        items = items_of(sizes)
        layouts = first_fit_layout(sizes, capacity)
        bins = first_fit(items, capacity)
        assert [l.indices for l in layouts] == [
            [int(it.key[1:]) for it in b.items] for b in bins
        ]
        assert [l.used for l in layouts] == [b.used for b in bins]
        assert [l.capacity for l in layouts] == [b.capacity for b in bins]


class TestOverflowSpillRegression:
    def test_thousands_of_overflow_items_spill_balanced(self):
        """Regression for the O(overflow·B) min() rescan: thousands of
        items overflowing into few bins must stay fast and balanced."""
        rnd = random.Random(7)
        sizes = [rnd.randint(1, 100) for _ in range(5000)]
        items = items_of(sizes)
        bins = pack_into_n_bins(items, 8, capacity=50)
        validate_packing(items, bins)
        # The spill heap must keep loads near-balanced: no bin may exceed
        # the ideal share by more than one max-size item.
        loads = [b.used for b in bins]
        assert max(loads) - min(loads) <= 100
        # And the result still matches the reference scan exactly.
        want = reference.pack_into_n_bins(items, 8, capacity=50)
        assert_identical(bins, want)

    def test_strict_overflow_raises(self):
        from repro.packing import PackingError

        items = items_of([10, 10, 10])
        with pytest.raises(PackingError):
            pack_into_n_bins(items, 1, capacity=15, strict=True)


class TestFreeSpaceIndex:
    def test_first_fit_slot_leftmost(self):
        fsi = FreeSpaceIndex()
        for free in [5, 20, 10, 20]:
            fsi.append(free)
        assert fsi.first_fit_slot(6) == 1
        assert fsi.first_fit_slot(21) == -1
        assert fsi.first_fit_slot(0) == 0
        fsi.consume(1, 18)  # free now [5, 2, 10, 20]
        assert fsi.first_fit_slot(6) == 2
        assert fsi.max_free() == 20

    def test_best_fit_slot_smallest_sufficient(self):
        fsi = FreeSpaceIndex()
        for free in [50, 8, 30, 8]:
            fsi.append(free)
        assert fsi.best_fit_slot(7) == 1     # smallest free >= 7, lowest slot
        assert fsi.best_fit_slot(9) == 2
        assert fsi.best_fit_slot(51) == -1
        fsi.consume(1, 8)                    # slot 1 now full
        assert fsi.best_fit_slot(7) == 3

    def test_lightest_tracks_loads(self):
        fsi = FreeSpaceIndex()
        for _ in range(3):
            fsi.append(0)
        fsi.add_load(0, 5)
        fsi.add_load(1, 2)
        assert fsi.lightest() == 2
        fsi.add_load(2, 10)
        assert fsi.lightest() == 1
        fsi.add_load(1, 100)
        assert fsi.lightest() == 0

    def test_growth_keeps_answers(self):
        fsi = FreeSpaceIndex()
        for i in range(100):
            fsi.append(i)
        # Leftmost slot with free >= 37 is slot 37 itself.
        assert fsi.first_fit_slot(37) == 37
        assert fsi.max_free() == 99
        assert len(fsi) == 100

    def test_brute_force_agreement(self):
        rnd = random.Random(3)
        fsi = FreeSpaceIndex()
        frees = []
        for _ in range(400):
            op = rnd.random()
            if op < 0.4 or not frees:
                f = rnd.randint(0, 50)
                fsi.append(f)
                frees.append(f)
            elif op < 0.8:
                s = rnd.randint(0, 60)
                want = next((i for i, f in enumerate(frees) if f >= s), -1)
                assert fsi.first_fit_slot(s) == want
                s2 = rnd.randint(0, 60)
                fitting = [(f, i) for i, f in enumerate(frees) if f >= s2]
                assert fsi.best_fit_slot(s2) == (min(fitting)[1] if fitting else -1)
            else:
                i = rnd.randrange(len(frees))
                take = rnd.randint(0, frees[i])
                fsi.consume(i, take)
                frees[i] -= take


class TestPackingCache:
    def _cat(self, n=200, seed=5):
        from repro.corpus import text_400k_like

        return text_400k_like(scale=n / 400_000, seed=seed)

    def test_exact_hit(self):
        cat = self._cat()
        cache = PackingCache()
        a = cache.pack_layout(cat, 10_000)
        b = cache.pack_layout(cat, 10_000)
        assert a is b
        assert cache.stats()["hits"] == 1

    def test_multiple_of_base_is_derived(self):
        cat = self._cat()
        cache = PackingCache()
        base = cache.pack_layout(cat, 10_000)
        derived = cache.pack_layout(cat, 30_000)
        assert cache.stats()["derived"] == 1
        # Derived = groups of 3 consecutive base bins.
        merged = [i for l in derived for i in l.indices]
        assert merged == [i for l in base for i in l.indices]
        from repro.packing import derive_multiples_layout

        assert [l.indices for l in derive_multiples_layout(base, [3])[3]] == [
            l.indices for l in derived
        ]

    def test_derive_from_restriction(self):
        cat = self._cat()
        cache = PackingCache()
        cache.pack_layout(cat, 10_000)
        # derive_from pinning a non-divisor forces a direct pack.
        cache.pack_layout(cat, 25_000, derive_from=10_000)
        assert cache.stats()["derived"] == 0

    def test_same_size_column_shares_entries(self):
        a, b = self._cat(seed=5), self._cat(seed=5)
        assert a.fingerprint() == b.fingerprint()
        cache = PackingCache()
        cache.pack_layout(a, 10_000)
        cache.pack_layout(b, 10_000)
        assert cache.stats()["hits"] == 1

    def test_eviction_bound(self):
        cat = self._cat()
        cache = PackingCache(max_entries=2)
        for s in [1000, 3000, 7000, 11000]:
            cache.pack_layout(cat, s, derive_from=1)
        assert len(cache) <= 2
