"""Tests for the grep application."""

import pytest

from repro.apps import GrepApplication, as_unit_meta
from repro.apps.grep import NONSENSE_WORD
from repro.corpus import text_400k_like
from repro.vfs import LiteralFile, Segment


def literal_file(path: str, text: str) -> LiteralFile:
    return LiteralFile.from_text(path, text)


class TestConstruction:
    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            GrepApplication("")

    def test_negative_hit_rate_rejected(self):
        with pytest.raises(ValueError):
            GrepApplication("x", expected_hit_rate=-1)


class TestNativeRun:
    def test_counts_matches_per_line(self):
        f = literal_file("a.txt", "needle here\nno match\nneedle again\n")
        res = GrepApplication("needle").run_native([f])
        assert res.work.matches == 2
        assert len(res.outputs["lines"]) == 2

    def test_nonsense_word_not_found_in_corpus(self):
        """The paper's full-traversal worst case: zero matches."""
        cat = text_400k_like(scale=2e-4)
        units = list(cat)[:20]
        res = GrepApplication(NONSENSE_WORD).run_native(units)
        assert res.work.matches == 0
        assert res.work.files_opened == 20
        assert res.work.bytes_read == sum(u.size for u in units)

    def test_regex_mode(self):
        f = literal_file("a.txt", "cat bat rat\ndog\n")
        res = GrepApplication(r"[cbr]at", regex=True).run_native([f])
        assert res.work.matches == 1  # one matching line

    def test_literal_mode_does_not_interpret_regex(self):
        f = literal_file("a.txt", "a.c\nabc\n")
        res = GrepApplication("a.c").run_native([f])
        assert res.work.matches == 1

    def test_segment_counts_as_one_file(self):
        cat = text_400k_like(scale=1e-4)
        seg = Segment("s0", tuple(list(cat)[:5]))
        res = GrepApplication(NONSENSE_WORD).run_native([seg])
        assert res.work.files_opened == 1
        assert res.work.bytes_read == seg.size + 4  # 4 joining newlines

    def test_output_bytes_tracked(self):
        f = literal_file("a.txt", "needle\n")
        res = GrepApplication("needle").run_native([f])
        assert res.work.output_bytes == 7


class TestEstimateWork:
    def test_matches_native_for_nonsense_search(self):
        cat = text_400k_like(scale=2e-4)
        units = list(cat)[:15]
        app = GrepApplication(NONSENSE_WORD)
        native = app.run_native(units).work
        est = app.estimate_work([as_unit_meta(u) for u in units])
        assert est.files_opened == native.files_opened
        assert est.bytes_read == native.bytes_read
        assert est.matches == native.matches == 0

    def test_hit_rate_estimate(self):
        meta = as_unit_meta(text_400k_like(scale=1e-4)[0])
        est = GrepApplication("the", expected_hit_rate=1e-3).estimate_work([meta])
        assert est.matches == int(meta.size * 1e-3)
        assert est.output_bytes > 0
