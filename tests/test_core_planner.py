"""Tests for the static provisioner, cost function and deadline adjustment."""

import math

import numpy as np
import pytest

from repro.core import (
    PlanError,
    ResidualAnalysis,
    StaticProvisioner,
    adjusted_deadline,
    adjustment_factor,
    ebs_assignment,
    general_strategy,
    plan_cost,
    reshape,
)
from repro.corpus import text_400k_like
from repro.perfmodel.regression import AffinePredictor, fit_affine, fit_power
from repro.units import GB, HOUR


def eq3_model() -> AffinePredictor:
    """The paper's Eq. (3): f(x) = 0.327 + 0.865e-4·x."""
    x = np.array([1e5, 1e6, 5e6, 1e7])
    y = 0.327 + 0.865e-4 * x
    return fit_affine(x, y)


def eq4_model() -> AffinePredictor:
    """The paper's Eq. (4): f(x) = 3.086 + 0.7255e-4·x."""
    x = np.array([1e5, 1e6, 5e6, 1e7])
    y = 3.086 + 0.725482e-4 * x
    return fit_affine(x, y)


class TestPlanCost:
    def test_deadline_over_one_hour(self):
        # D >= 1: cost = r * ceil(P)
        assert plan_cost(26.1, 1.0, 0.085) == pytest.approx(0.085 * 27)

    def test_deadline_under_one_hour(self):
        # D < 1: cost = r * ceil(P / D)
        assert plan_cost(2.0, 0.5, 0.085) == pytest.approx(0.085 * 4)

    def test_zero_work(self):
        assert plan_cost(0.0, 1.0, 0.085) == 0.0

    def test_bad_inputs(self):
        with pytest.raises(PlanError):
            plan_cost(1.0, 0.0, 0.085)
        with pytest.raises(PlanError):
            plan_cost(-1.0, 1.0, 0.085)


class TestEbsAssignment:
    def test_paper_scenario(self):
        """§5.1: 100 GB split over 100 EBS devices of 1 GB each."""
        # Eq. (1)-like model admits ~272 GB/h; V0 = 1 GB
        out = ebs_assignment(100 * GB, 1 * GB, 272 * GB)
        assert out["devices"] == 100
        assert out["devices_per_instance"] == 272
        assert out["instances"] == 1

    def test_tight_deadline_more_instances(self):
        out = ebs_assignment(100 * GB, 1 * GB, 10 * GB)
        assert out["devices_per_instance"] == 10
        assert out["instances"] == 10

    def test_deadline_below_granularity_rejected(self):
        """§5.1: V0 > VD → cannot meet without reorganizing."""
        with pytest.raises(PlanError):
            ebs_assignment(100 * GB, 1 * GB, 0.5 * GB)

    def test_bad_volumes(self):
        with pytest.raises(PlanError):
            ebs_assignment(0, 1, 1.0)


class TestStaticProvisioner:
    def test_eq3_instance_count_matches_paper(self):
        """§5.2: V≈1.086 GB, D=1 h, Eq.(3) → 27 instances."""
        prov = StaticProvisioner(eq3_model())
        x0 = prov.volume_for(HOUR)
        assert x0 == pytest.approx((3600 - 0.327) / 0.865e-4, rel=1e-6)
        V = int(26.1 * math.floor(x0))
        assert prov.instances_for(V, HOUR) == 27

    def test_eq4_fewer_instances(self):
        """§5.2: the lower Eq.(4) slope prescribes 22 instances for the
        same volume (and 11 for D=2 h vs 14)."""
        prov3, prov4 = StaticProvisioner(eq3_model()), StaticProvisioner(eq4_model())
        V = int(26.1 * math.floor(prov3.volume_for(HOUR)))
        assert prov4.instances_for(V, HOUR) < prov3.instances_for(V, HOUR)
        assert prov4.instances_for(V, 2 * HOUR) < prov3.instances_for(V, 2 * HOUR)

    def test_plan_uniform_balances_volumes(self):
        cat = text_400k_like(scale=1e-3)
        units = list(reshape(cat, None).units)
        prov = StaticProvisioner(eq3_model())
        plan = prov.plan(units, deadline=600.0, strategy="uniform")
        vols = [sum(u.size for u in b) for b in plan.assignments]
        assert max(vols) - min(vols) < max(u.size for u in units) * 2
        assert plan.total_volume == cat.total_size

    def test_plan_first_fit_can_be_uneven(self):
        cat = text_400k_like(scale=1e-3)
        units = list(reshape(cat, None).units)
        prov = StaticProvisioner(eq3_model())
        ff = prov.plan(units, deadline=600.0, strategy="first-fit")
        uni = prov.plan(units, deadline=600.0, strategy="uniform")
        assert ff.n_instances == uni.n_instances
        # uniform reduces the worst-bin predicted time (Fig. 8(b) effect)
        assert uni.max_predicted_time() <= ff.max_predicted_time() + 1e-9

    def test_predicted_cost_ceil_hours(self):
        prov = StaticProvisioner(eq3_model())
        cat = text_400k_like(scale=5e-4)
        plan = prov.plan(list(cat), deadline=HOUR, strategy="uniform")
        assert plan.predicted_cost(0.085) == pytest.approx(0.085 * plan.n_instances)

    def test_planning_deadline_changes_count(self):
        cat = text_400k_like(scale=1e-3)
        units = list(cat)
        prov = StaticProvisioner(eq3_model())
        loose = prov.plan(units, deadline=30.0)
        tight = prov.plan(units, deadline=30.0, planning_deadline=18.0)
        assert tight.n_instances > loose.n_instances
        assert tight.strategy == "adjusted"
        assert tight.deadline == 30.0

    def test_infeasible_deadline_rejected(self):
        prov = StaticProvisioner(eq3_model())
        with pytest.raises(PlanError):
            prov.plan(list(text_400k_like(scale=1e-4)), deadline=0.1)

    def test_empty_units_rejected(self):
        with pytest.raises(PlanError):
            StaticProvisioner(eq3_model()).plan([], deadline=100.0)

    def test_bad_strategy(self):
        with pytest.raises(PlanError):
            StaticProvisioner(eq3_model()).plan(
                list(text_400k_like(scale=1e-4)), deadline=600.0, strategy="magic")

    def test_bad_rate(self):
        with pytest.raises(PlanError):
            StaticProvisioner(eq3_model(), rate=0.0)

    def test_marginal_rule_fig2(self):
        x = np.array([1e3, 1e4, 1e5, 1e6])
        convex = StaticProvisioner(fit_power(x, 1e-6 * x**1.4))
        concave = StaticProvisioner(fit_power(x, 1e-1 * x**0.6))
        linear = StaticProvisioner(eq3_model())
        assert convex.marginal_rule() == "start-new-instances"
        assert concave.marginal_rule() == "pack-to-deadline"
        assert linear.marginal_rule() == "indifferent"


class TestDeadlineAdjustment:
    def noisy_model(self, rel_spread=0.4, seed=0):
        rng = np.random.default_rng(seed)
        x = np.linspace(1e5, 1e7, 30)
        y = (0.3 + 0.9e-4 * x) * (1.0 + rng.normal(0, rel_spread / 2, x.size))
        return fit_affine(x, y)

    def test_paper_z_value_preserved(self):
        """a = 1.29·σ + μ for the 10% miss target."""
        ra = ResidualAnalysis(mu=0.1, sigma=1.105, n=20)
        assert ra.factor(0.10) == pytest.approx(1.29 * 1.105 + 0.1)

    def test_other_quantiles_use_scipy(self):
        ra = ResidualAnalysis(mu=0.0, sigma=1.0, n=20)
        assert ra.factor(0.05) == pytest.approx(1.6449, rel=1e-3)

    def test_adjusted_deadline_paper_numbers(self):
        """§5.2 quotes D=3600 → D₁=3124 and D=7200 → D₁=6247.

        Note: the paper also quotes a = 1.525, which is inconsistent with
        its own D₁ values under D₁ = D/(1+a) (3600/2.525 ≈ 1426); the D₁
        pair implies a ≈ 0.1524.  We reproduce the self-consistent D₁
        arithmetic (see EXPERIMENTS.md, experiment F8d).
        """
        a = 3600.0 / 3124.0 - 1.0
        assert adjusted_deadline(3600.0, a) == pytest.approx(3124, abs=1)
        assert adjusted_deadline(7200.0, a) == pytest.approx(6247, abs=2)

    def test_adjustment_factor_grows_with_noise(self):
        calm = self.noisy_model(rel_spread=0.05, seed=1)
        wild = self.noisy_model(rel_spread=0.5, seed=1)
        assert adjustment_factor(wild) > adjustment_factor(calm)

    def test_adjusted_deadline_validation(self):
        with pytest.raises(ValueError):
            adjusted_deadline(0.0, 0.5)
        with pytest.raises(ValueError):
            adjusted_deadline(100.0, -1.0)

    def test_miss_probability_validation(self):
        ra = ResidualAnalysis(mu=0.0, sigma=1.0, n=5)
        with pytest.raises(ValueError):
            ra.factor(0.0)
        with pytest.raises(ValueError):
            ra.factor(1.0)

    def test_general_strategy_keeps_uniform_when_loose(self):
        model = self.noisy_model(rel_spread=0.02, seed=2)
        out = general_strategy(model, volume=10**7, deadline=2 * HOUR)
        assert out["adjusted"] is False
        assert out["instances"] >= 1

    def test_general_strategy_adjusts_when_risky(self):
        model = self.noisy_model(rel_spread=0.6, seed=3)
        out_adj = general_strategy(model, volume=10**8, deadline=HOUR)
        plain = StaticProvisioner(model).instances_for(10**8, HOUR)
        if out_adj["adjusted"]:
            assert out_adj["instances"] >= plain
            assert out_adj["planning_deadline"] < HOUR

    def test_general_strategy_validation(self):
        with pytest.raises(ValueError):
            general_strategy(self.noisy_model(), volume=0, deadline=HOUR)
