"""Tests for the DAG scheduler: stage chaining, policies, flight record."""

import numpy as np
import pytest

from repro.apps import GrepApplication, GrepCostProfile
from repro.cloud import Cloud, Workload
from repro.core import WorkflowError, WorkflowStage
from repro.core.planner import StaticProvisioner
from repro.corpus import html_18mil_like
from repro.dag import (
    DagScheduler,
    EbsBackend,
    LocalDiskBackend,
    S3Backend,
    WorkflowGraph,
    execute_dag,
    fanout_pipeline,
    linear_pipeline,
)
from repro.fleet import LeaseManager
from repro.obs import configure, disable
from repro.obs.ledger import capture_runs
from repro.perfmodel.regression import fit_affine
from repro.runner.execute import execute_plan
from repro.units import HOUR

SCALE = 5e-5


def _affine(a, b):
    x = np.array([1e5, 1e6, 1e7])
    return fit_affine(x, a + b * x)


def _grep_stage(name="grep", ratio=1.0):
    return WorkflowStage(
        name=name,
        workload=Workload("grep", GrepApplication("economy"),
                          GrepCostProfile()),
        predictor=_affine(0.2, 1.3e-8), output_ratio=ratio)


def _single_stage_graph():
    g = WorkflowGraph()
    g.add_stage(_grep_stage())
    return g


class TestBasicRuns:
    def test_linear_pipeline_runs_every_stage(self):
        cloud = Cloud(seed=11)
        cat = html_18mil_like(scale=SCALE, seed=11)
        rep = execute_dag(cloud, linear_pipeline(), cat, 6 * HOUR)
        assert set(rep.stages) == {"filter", "extract", "tokenize", "tag",
                                   "aggregate"}
        assert rep.makespan > 0
        assert rep.compute_cost_usd > 0
        assert rep.backend == "local" and rep.mode == "concurrent"

    def test_consumers_start_after_producer_output_is_available(self):
        cloud = Cloud(seed=11)
        cat = html_18mil_like(scale=SCALE, seed=11)
        rep = execute_dag(cloud, linear_pipeline(), cat, 6 * HOUR,
                          backend=S3Backend())
        order = ["filter", "extract", "tokenize", "tag", "aggregate"]
        for prod, cons in zip(order, order[1:]):
            assert rep.stages[cons].ready_at >= rep.stages[prod].available_at

    def test_transfers_one_put_per_producer_one_get_per_edge(self):
        cloud = Cloud(seed=11)
        cat = html_18mil_like(scale=SCALE, seed=11)
        g = fanout_pipeline()
        rep = execute_dag(cloud, g, cat, 6 * HOUR, backend=S3Backend())
        puts = [t for t in rep.transfers if t.kind == "put"]
        gets = [t for t in rep.transfers if t.kind == "get"]
        # every stage with successors puts once; every edge gets once
        producers = {p for p, _ in g.edges()}
        assert len(puts) == len(producers)
        assert len(gets) == len(g.edges())

    def test_empty_stage_is_a_noop(self):
        g = WorkflowGraph()
        g.add_stage(_grep_stage("drop", ratio=0.0))
        g.add_stage(_grep_stage("starved"), after=["drop"])
        cloud = Cloud(seed=3)
        cat = html_18mil_like(scale=SCALE, seed=3)
        rep = execute_dag(cloud, g, cat, 2 * HOUR)
        assert rep.stages["starved"].report.runs == []
        assert rep.n_failed == 0

    def test_deterministic(self):
        def run(seed):
            cloud = Cloud(seed=seed)
            cat = html_18mil_like(scale=SCALE, seed=seed)
            return execute_dag(cloud, fanout_pipeline(), cat, 6 * HOUR,
                               backend=EbsBackend()).summary()

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_validation(self):
        cloud = Cloud(seed=1)
        cat = html_18mil_like(scale=SCALE, seed=1)
        with pytest.raises(WorkflowError):
            DagScheduler(cloud, linear_pipeline(), cat, 6 * HOUR, mode="bogus")
        with pytest.raises(WorkflowError):
            DagScheduler(cloud, linear_pipeline(), cat, 6 * HOUR,
                         policy="bogus")
        with pytest.raises(WorkflowError):
            DagScheduler(cloud, WorkflowGraph(), cat, 6 * HOUR)


class TestDifferentialBilling:
    def test_local_disk_single_stage_matches_execute_plan_exactly(self):
        """A one-stage DAG over the free backend IS a single-plan run:
        same instances, same durations, same ceil-hour bill."""
        stage = _grep_stage()
        cat = html_18mil_like(scale=SCALE, seed=21)
        units = list(cat)

        ref_cloud = Cloud(seed=21)
        plan = StaticProvisioner(stage.predictor).plan(units, 1 * HOUR)
        ref = execute_plan(ref_cloud, stage.workload, plan)

        dag_cloud = Cloud(seed=21)
        rep = execute_dag(dag_cloud, _single_stage_graph(), cat, 1 * HOUR,
                          backend=LocalDiskBackend())
        got = rep.stages["grep"].report

        assert rep.transfer_cost == 0.0 and rep.transfer_seconds == 0.0
        assert got.instance_hours == ref.instance_hours
        assert got.cost == ref.cost
        assert got.makespan == ref.makespan
        assert [(r.instance_id, r.duration, r.volume) for r in got.runs] == \
               [(r.instance_id, r.duration, r.volume) for r in ref.runs]
        assert dag_cloud.ledger.total_cost == ref_cloud.ledger.total_cost

    def test_compute_identical_across_backends(self):
        """Backend draws live on their own forks, so swapping the backend
        moves only the transfers — never the compute."""
        def stage_runs(backend):
            cloud = Cloud(seed=11)
            cat = html_18mil_like(scale=SCALE, seed=11)
            rep = execute_dag(cloud, linear_pipeline(), cat, 6 * HOUR,
                              backend=backend)
            return {n: [(r.instance_id, r.duration) for r in s.report.runs]
                    for n, s in rep.stages.items()}, rep.compute_cost_usd

        local = stage_runs(LocalDiskBackend())
        s3 = stage_runs(S3Backend())
        ebs = stage_runs(EbsBackend())
        assert local == s3 == ebs


class TestModes:
    def test_concurrent_beats_serial_on_the_fanout_dag(self):
        def run(mode):
            cloud = Cloud(seed=11)
            cat = html_18mil_like(scale=SCALE, seed=11)
            return execute_dag(cloud, fanout_pipeline(), cat, 6 * HOUR,
                               mode=mode).makespan

        assert run("concurrent") < run("serial")

    def test_serial_stages_never_overlap(self):
        cloud = Cloud(seed=11)
        cat = html_18mil_like(scale=SCALE, seed=11)
        rep = execute_dag(cloud, fanout_pipeline(), cat, 6 * HOUR,
                          mode="serial")
        spans = sorted((s.ready_at, s.stage_end) for s in rep.stages.values())
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end


class TestLeasedPolicy:
    def test_leased_dag_reuses_instances_across_stages(self):
        cloud = Cloud(seed=11)
        cat = html_18mil_like(scale=SCALE, seed=11)
        rep = execute_dag(cloud, linear_pipeline(), cat, 6 * HOUR,
                          policy="leased")
        assert rep.lease_stats is not None
        # Warm hand-offs between stage campaigns are the whole point.
        assert rep.lease_stats["cross_campaign_hits"] > 0

    def test_shared_manager_is_not_shut_down(self):
        cloud = Cloud(seed=11)
        cat = html_18mil_like(scale=SCALE, seed=11)
        manager = LeaseManager(cloud, tag="shared")
        DagScheduler(cloud, linear_pipeline(), cat, 6 * HOUR,
                     policy="leased", lease_manager=manager).run()
        # caller owns the manager: leases drained but pool still usable
        manager.shutdown()


class TestFlightRecorder:
    def test_run_emits_a_dag_record_with_stage_phases(self):
        configure(trace=True, metrics=True)
        try:
            with capture_runs() as ledger:
                cloud = Cloud(seed=11)
                cat = html_18mil_like(scale=SCALE, seed=11)
                execute_dag(cloud, fanout_pipeline(), cat, 6 * HOUR,
                            backend=S3Backend(), label="dag.test")
            recs = [r for r in ledger.records() if r.kind == "dag"]
            assert len(recs) == 1
            rec = recs[0]
            assert rec.label == "dag.test"
            assert set(rec.profile["phases"]) == {
                "filter", "extract", "tokenize", "tag", "aggregate"}
            assert rec.deadline["bins"] > 0
            assert rec.extra["transfers"]["count"] == len(
                fanout_pipeline().edges()) + 4  # gets + one put per producer
            assert rec.config["backend"] == "s3"
        finally:
            disable()

    def test_stage_spans_land_on_the_tracer(self):
        configure(trace=True, metrics=True)
        try:
            cloud = Cloud(seed=11)
            cat = html_18mil_like(scale=SCALE, seed=11)
            execute_dag(cloud, linear_pipeline(), cat, 6 * HOUR,
                        backend=S3Backend())
            names = {s.name for s in cloud.obs.tracer.spans}
            assert "dag.stage.run" in names
            assert "dag.transfer.put" in names
            assert "dag.transfer.get" in names
        finally:
            disable()
