"""Tests for failure injection and fault-tolerant execution."""

import numpy as np
import pytest

from repro.apps import PosCostProfile, PosTaggerApplication
from repro.cloud import Cloud, FailureModel, Workload
from repro.cloud.instance import InstanceError, InstanceState
from repro.core import StaticProvisioner, reshape
from repro.corpus import text_400k_like
from repro.perfmodel.regression import fit_affine
from repro.runner import FaultPolicy, execute_fault_tolerant
from repro.sim.random import RngStream


def model():
    x = np.array([1e5, 1e6, 5e6])
    return fit_affine(x, 0.327 + 0.865e-4 * x)


def pos_workload():
    return Workload("postag", PosTaggerApplication(), PosCostProfile())


def make_plan(deadline=200.0, scale=2e-3):
    cat = text_400k_like(scale=scale)
    units = list(reshape(cat, None).units)
    return StaticProvisioner(model()).plan(units, deadline, strategy="uniform")


class TestFailureModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailureModel(mtbf_hours=0)

    def test_draw_distribution(self):
        fm = FailureModel(mtbf_hours=2.0)
        rng = RngStream(4)
        draws = [fm.draw_time_to_failure(rng.fork(str(i))) for i in range(2000)]
        assert np.mean(draws) == pytest.approx(2.0 * 3600, rel=0.1)
        assert all(d > 0 for d in draws)

    def test_cloud_without_model_never_fails(self):
        inst = Cloud(seed=1).launch_instance()
        assert inst.time_to_failure is None and inst.crash_at is None

    def test_cloud_with_model_sets_crash_time(self):
        cloud = Cloud(seed=1, failure_model=FailureModel(mtbf_hours=1.0))
        inst = cloud.launch_instance()
        assert inst.time_to_failure is not None
        assert inst.crash_at == pytest.approx(inst.running_since + inst.time_to_failure)


class TestInstanceFailState:
    def test_fail_from_running(self):
        cloud = Cloud(seed=2)
        inst = cloud.launch_instance()
        vol = cloud.create_volume(10, zone=inst.zone)
        vol.attach(inst)
        inst.fail(cloud.now)
        assert inst.state is InstanceState.FAILED
        assert vol.attached_to is None  # EBS survives, detached

    def test_fail_requires_running(self):
        cloud = Cloud(seed=2)
        inst = cloud.launch_instance(wait=False)
        with pytest.raises(InstanceError):
            inst.fail(cloud.now)

    def test_terminate_after_fail_rejected(self):
        cloud = Cloud(seed=2)
        inst = cloud.launch_instance()
        inst.fail(cloud.now)
        with pytest.raises(InstanceError):
            inst.terminate(cloud.now)

    def test_fail_instance_bills_usage(self):
        cloud = Cloud(seed=2)
        inst = cloud.launch_instance()
        cloud.advance(120.0)
        cloud.fail_instance(inst)
        assert cloud.ledger.total_instance_hours == 1


class TestFaultPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(batch_units=0)
        with pytest.raises(ValueError):
            FaultPolicy(detection_timeout=-1)
        with pytest.raises(ValueError):
            FaultPolicy(max_crashes_per_bin=0)


class TestExecuteFaultTolerant:
    def test_no_failures_matches_plain_execution_work(self):
        plan = make_plan()
        report, events = execute_fault_tolerant(
            Cloud(seed=5), pos_workload(), plan)
        assert events == []
        assert sum(r.volume for r in report.runs) == plan.total_volume

    def test_crashes_detected_and_recovered(self):
        plan = make_plan()
        cloud = Cloud(seed=5, failure_model=FailureModel(mtbf_hours=0.05))
        report, events = execute_fault_tolerant(
            cloud, pos_workload(), plan,
            policy=FaultPolicy(batch_units=25))
        assert len(events) >= 1
        # all work still completed exactly once per bin
        assert sum(r.volume for r in report.runs) == plan.total_volume
        assert report.n_instances == plan.n_instances

    def test_crash_penalties_lengthen_durations(self):
        plan = make_plan()
        clean, _ = execute_fault_tolerant(Cloud(seed=5), pos_workload(), plan)
        faulty_cloud = Cloud(seed=5, failure_model=FailureModel(mtbf_hours=0.05))
        faulty, events = execute_fault_tolerant(
            faulty_cloud, pos_workload(), plan, policy=FaultPolicy(batch_units=25))
        crashed_bins = {e.bin_index for e in events}
        assert crashed_bins
        for run_c, run_f, (idx, _) in zip(
            clean.runs, faulty.runs,
            [(i, u) for i, u in enumerate(plan.assignments) if u],
        ):
            if idx in crashed_bins:
                assert run_f.duration > run_c.duration + 200.0  # timeout+penalty

    def test_crashed_instances_billed(self):
        plan = make_plan()
        cloud = Cloud(seed=5, failure_model=FailureModel(mtbf_hours=0.05))
        report, events = execute_fault_tolerant(
            cloud, pos_workload(), plan, policy=FaultPolicy(batch_units=25))
        if events:
            assert len(cloud.ledger.records) > report.n_instances

    def test_unusable_cloud_reports_failed_bins(self):
        # Regression: crash exhaustion used to raise and fold the whole
        # campaign; the default now reports the bin as failed with its
        # billed hours and the run carries on.
        plan = make_plan()
        cloud = Cloud(seed=5, failure_model=FailureModel(mtbf_hours=1e-4))
        report, events = execute_fault_tolerant(
            cloud, pos_workload(), plan,
            policy=FaultPolicy(batch_units=50, max_crashes_per_bin=2))
        assert report.failures, "an unusable cloud must surface failed bins"
        assert report.n_failed == len(report.failures)
        assert not report.met_deadline
        for f in report.failures:
            assert f.reason == "crash-exhausted"
            assert f.billed_hours >= 1          # crashed hours still paid
            assert f.completed_units < f.n_units
        # failed + completed bins account for the entire plan
        done = {r for r in range(len(plan.assignments)) if plan.assignments[r]}
        reported = {f.bin_index for f in report.failures}
        assert len(report.runs) + len(reported) == len(done)

    def test_unusable_cloud_raise_mode_preserved(self):
        plan = make_plan()
        cloud = Cloud(seed=5, failure_model=FailureModel(mtbf_hours=1e-4))
        with pytest.raises(RuntimeError, match="unusable"):
            execute_fault_tolerant(cloud, pos_workload(), plan,
                                   policy=FaultPolicy(batch_units=50,
                                                      max_crashes_per_bin=2,
                                                      on_exhaustion="raise"))

    def test_on_exhaustion_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(on_exhaustion="ignore")

    def test_deterministic(self):
        plan = make_plan()

        def run(seed):
            cloud = Cloud(seed=seed, failure_model=FailureModel(mtbf_hours=0.05))
            rep, ev = execute_fault_tolerant(cloud, pos_workload(), plan)
            return ([r.duration for r in rep.runs], len(ev))

        assert run(9) == run(9)
