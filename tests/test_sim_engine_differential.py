"""Differential oracle: bucketed scheduler ≡ heap scheduler, bit for bit.

The calendar-queue scheduler is a pure data-structure swap — the engine's
observable behaviour (which events fire, in what order, at what clock
readings) must be *identical* to the binary-heap reference, not merely
equivalent.  Two layers of evidence:

* a hypothesis property drives both engines through the same random
  program of ``schedule`` / ``schedule_batch`` / ``cancel`` /
  ``run-until`` operations (including callbacks that schedule follow-ups
  while firing) and compares the full firing transcript;
* whole campaigns — scalar ``execute_plan`` under chaos scenarios and the
  columnar fleet runner — run on ``Cloud(scheduler="heap")`` vs
  ``Cloud(scheduler="bucket")`` and must produce identical reports,
  ledgers and timelines across seeds × scenarios.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import PosCostProfile, PosTaggerApplication
from repro.chaos import FaultInjector, get_scenario
from repro.cloud import Cloud, Workload
from repro.core import StaticProvisioner, reshape
from repro.corpus import text_400k_like
from repro.perfmodel.regression import fit_affine
from repro.runner import execute_plan, execute_uniform_fleet
from repro.sim.engine import SimulationEngine

# ---------------------------------------------------------------------------
# random engine programs
# ---------------------------------------------------------------------------

# One op per tuple; all times are relative so programs stay legal on any
# clock.  ("chain", dt, dt2) schedules a callback that, while firing,
# schedules a second event dt2 later — exercising insert-during-fire.
_OPS = st.one_of(
    st.tuples(st.just("schedule"),
              st.floats(0.0, 500.0, allow_nan=False, allow_infinity=False)),
    st.tuples(st.just("batch"),
              st.lists(st.floats(0.0, 500.0, allow_nan=False,
                                 allow_infinity=False),
                       min_size=1, max_size=20)),
    st.tuples(st.just("chain"),
              st.floats(0.0, 200.0, allow_nan=False, allow_infinity=False),
              st.floats(0.0, 200.0, allow_nan=False, allow_infinity=False)),
    st.tuples(st.just("cancel"), st.integers(0, 10_000)),
    st.tuples(st.just("run"),
              st.floats(0.0, 300.0, allow_nan=False, allow_infinity=False)),
    st.tuples(st.just("step"),),
)

PROGRAMS = st.lists(_OPS, min_size=1, max_size=40)


def _interpret(engine: SimulationEngine, program) -> dict:
    """Run a program; return the full observable transcript."""
    fired: list[tuple[float, str, int]] = []
    handles: list = []
    n = 0

    def logger(label):
        def cb():
            fired.append((engine.now, label, engine.events_fired))
        return cb

    def chained(label, dt2):
        def cb():
            fired.append((engine.now, label, engine.events_fired))
            handles.append(engine.schedule_in(
                dt2, logger(f"{label}.child"), label=f"{label}.child"))
        return cb

    for op in program:
        kind = op[0]
        if kind == "schedule":
            label = f"ev{n}"
            n += 1
            handles.append(engine.schedule_in(op[1], logger(label), label=label))
        elif kind == "batch":
            labels = [f"b{n + i}" for i in range(len(op[1]))]
            n += len(op[1])
            handles.extend(engine.schedule_batch(
                [engine.now + dt for dt in op[1]],
                [logger(lb) for lb in labels], labels))
        elif kind == "chain":
            label = f"c{n}"
            n += 1
            handles.append(engine.schedule_in(
                op[1], chained(label, op[2]), label=label))
        elif kind == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        elif kind == "run":
            engine.run(until=engine.now + op[1])
        elif kind == "step":
            engine.step()
    # drain whatever is left so late events are compared too
    engine.run()
    return {
        "fired": fired,
        "now": engine.now,
        "events_fired": engine.events_fired,
        "pending": engine.pending,
    }


class TestRandomPrograms:
    @settings(max_examples=120, deadline=None)
    @given(program=PROGRAMS,
           width=st.sampled_from([None, 0.25, 1.0, 37.5, 1000.0]))
    def test_heap_and_bucket_transcripts_identical(self, program, width):
        heap = _interpret(SimulationEngine(scheduler="heap"), program)
        bucket = _interpret(
            SimulationEngine(scheduler="bucket", bucket_width=width), program)
        assert heap == bucket

    @settings(max_examples=40, deadline=None)
    @given(program=PROGRAMS)
    def test_auto_migration_transcript_identical(self, program):
        """auto starts on the heap and may migrate mid-run; same transcript."""
        heap = _interpret(SimulationEngine(scheduler="heap"), program)
        auto = _interpret(SimulationEngine(scheduler="auto"), program)
        assert heap == auto

    @settings(max_examples=40, deadline=None)
    @given(times=st.lists(st.floats(0.0, 100.0, allow_nan=False,
                                    allow_infinity=False),
                          min_size=2, max_size=30))
    def test_equal_times_fire_in_schedule_order(self, times):
        """Ties break by scheduling sequence on both schedulers."""
        dup = times + times[:5]          # force collisions
        results = []
        for scheduler in ("heap", "bucket"):
            eng = SimulationEngine(scheduler=scheduler)
            order = []
            for i, t in enumerate(dup):
                eng.schedule_at(t, lambda i=i: order.append(i), label=str(i))
            eng.run()
            results.append(order)
        assert results[0] == results[1]


# ---------------------------------------------------------------------------
# whole campaigns, heap vs bucket
# ---------------------------------------------------------------------------

def _model():
    x = np.array([1e5, 1e6, 5e6])
    return fit_affine(x, 0.327 + 0.865e-4 * x)


def _workload():
    return Workload("postag", PosTaggerApplication(), PosCostProfile())


def _plan(deadline=30.0):
    cat = text_400k_like(scale=1e-3)
    units = list(reshape(cat, None).units)
    return StaticProvisioner(_model()).plan(units, deadline)


def _report_fingerprint(cloud: Cloud, report) -> tuple:
    return (
        tuple((r.instance_id, r.boot_delay, r.duration, r.missed(30.0))
              for r in report.runs),
        report.makespan,
        report.instance_hours,
        cloud.ledger.total_cost,
        cloud.engine.now,
        cloud.engine.events_fired,
    )


class TestCampaignEquality:
    @pytest.mark.parametrize("seed", [11, 23])
    @pytest.mark.parametrize("scenario", ["flaky-boots", "slow-ebs"])
    def test_chaos_campaign_bit_identical(self, seed, scenario):
        plan = _plan()
        fingerprints = []
        for scheduler in ("heap", "bucket"):
            injector = FaultInjector([get_scenario(scenario)], seed=seed)
            cloud = Cloud(seed=seed, chaos=injector, scheduler=scheduler)
            report = execute_plan(cloud, _workload(), plan)
            fingerprints.append(_report_fingerprint(cloud, report))
        assert fingerprints[0] == fingerprints[1]

    @pytest.mark.parametrize("seed", [3, 17])
    def test_clean_campaign_bit_identical(self, seed):
        plan = _plan()
        fingerprints = []
        for scheduler in ("heap", "bucket"):
            cloud = Cloud(seed=seed, scheduler=scheduler)
            report = execute_plan(cloud, _workload(), plan)
            fingerprints.append(_report_fingerprint(cloud, report))
        assert fingerprints[0] == fingerprints[1]

    def test_columnar_fleet_bit_identical(self):
        cat = text_400k_like(scale=1e-3)
        units = list(reshape(cat, None).units)[:6]
        results = []
        for scheduler in ("heap", "bucket"):
            cloud = Cloud(seed=29, scheduler=scheduler)
            rep = execute_uniform_fleet(
                cloud, _workload(), 500, units, deadline=3600.0)
            results.append((rep.durations.tolist(), rep.ends.tolist(),
                            rep.makespan, rep.n_missed,
                            cloud.ledger.total_cost, cloud.engine.now))
        assert results[0] == results[1]
