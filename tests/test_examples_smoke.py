"""Smoke tests: the fast examples run to completion as scripts.

The slower examples (quickstart, news_grep_campaign,
pos_deadline_scheduling) are exercised by the campaign/experiment tests at
reduced scale; here the cheap ones run verbatim so a broken public API
surfaces immediately.
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestFastExamples:
    def test_spot_market(self, capsys):
        out = run_example("spot_market.py", capsys)
        assert "on-demand" in out
        assert "$" in out

    def test_spot_fallback(self, capsys):
        out = run_example("spot_fallback.py", capsys)
        assert "fallback ladder" in out
        assert "naive spot" in out
        assert "pure on-demand" in out

    def test_fault_tolerance(self, capsys):
        out = run_example("fault_tolerance.py", capsys)
        assert "processed exactly once" in out
        assert "crashes:" in out

    def test_text_workflow(self, capsys):
        out = run_example("text_workflow.py", capsys)
        assert "workflow makespan" in out
        assert "met" in out

    def test_dynamic_rescheduling(self, capsys):
        out = run_example("dynamic_rescheduling.py", capsys)
        assert "straggler(s) replaced" in out

    def test_broker_matrix(self, capsys):
        out = run_example("broker_matrix.py", capsys)
        assert "eviction-storm" in out
        assert "spot-lease" in out
        assert "interruptions ridden out" in out
        assert "the broker stack is the only thing that changed" in out

    def test_fleet_sharing(self, capsys):
        out = run_example("fleet_sharing.py", capsys)
        assert "rejected (unknown tenant 'hooli')" in out
        assert "rejected (budget" in out
        assert "warm-pool hit rate" in out
        assert "per-tenant bill" in out


class TestExampleFilesExist:
    @pytest.mark.parametrize("name", [
        "quickstart.py",
        "news_grep_campaign.py",
        "pos_deadline_scheduling.py",
        "dynamic_rescheduling.py",
        "fault_tolerance.py",
        "text_workflow.py",
        "spot_market.py",
        "spot_fallback.py",
        "fleet_sharing.py",
        "broker_matrix.py",
    ])
    def test_listed_example_exists_and_has_main(self, name):
        path = EXAMPLES / name
        assert path.exists()
        src = path.read_text(encoding="utf-8")
        assert 'if __name__ == "__main__":' in src
        assert src.lstrip().startswith(("#!/usr/bin/env python", '"""'))
