"""Tests for the multiprocess sweep harness."""

import pytest

from repro.experiments.sweep import Cell, fork_seeds, resolve, run_sweep
from repro.obs import MetricsRegistry, configure, disable, get_obs

# Cells resolve their callables by "module:name" path, so the test cell
# must be importable from the workers too — module level, plain args.
CELL = "tests.test_sweep:sample_cell"


def sample_cell(seed: int, scale: float = 1.0) -> dict:
    from repro.sim.random import RngStream

    rng = RngStream(seed)
    value = rng.uniform(0.0, scale)
    get_obs().metrics.counter("sweep.test.cells").inc()
    get_obs().metrics.histogram("sweep.test.value").observe(value)
    return {"seed": seed, "value": value}


def failing_cell() -> None:
    raise RuntimeError("cell exploded")


class TestResolve:
    def test_resolves_module_callable(self):
        assert resolve(CELL) is sample_cell

    def test_rejects_pathless_string(self):
        with pytest.raises(ValueError, match="module:callable"):
            resolve("justaname")

    def test_rejects_non_callable(self):
        with pytest.raises(ValueError, match="does not name a callable"):
            resolve("tests.test_sweep:CELL")


class TestForkSeeds:
    def test_deterministic_and_distinct(self):
        a = fork_seeds(7, 5)
        assert a == fork_seeds(7, 5)
        assert len(set(a)) == 5

    def test_prefix_stable(self):
        """Growing the grid never reseeds existing cells."""
        assert fork_seeds(7, 8)[:3] == fork_seeds(7, 3)

    def test_namespaced(self):
        assert fork_seeds(7, 3, "a") != fork_seeds(7, 3, "b")


class TestRunSweep:
    def _cells(self, n=4):
        return [Cell(CELL, {"seed": s}, tag=f"s{s}")
                for s in fork_seeds(0, n)]

    def test_inline_results_in_input_order(self):
        cells = self._cells()
        res = run_sweep(cells, processes=1)
        assert res.processes == 1
        assert res.tags == [c.tag for c in cells]
        assert [r["seed"] for r in res.rows] == [c.kwargs["seed"] for c in cells]

    def test_pool_matches_inline_bit_for_bit(self):
        cells = self._cells()
        inline = run_sweep(cells, processes=1)
        pooled = run_sweep(cells, processes=2)
        assert pooled.processes == 2
        assert pooled.rows == inline.rows

    def test_single_cell_never_spawns(self):
        res = run_sweep(self._cells(1), processes=8)
        assert res.processes == 1

    def test_empty_grid(self):
        res = run_sweep([], processes=4)
        assert res.rows == [] and res.tags == []

    def test_cell_error_propagates(self):
        with pytest.raises(RuntimeError, match="cell exploded"):
            run_sweep([Cell("tests.test_sweep:failing_cell")], processes=1)

    def test_pool_cell_error_propagates(self):
        cells = [Cell(CELL, {"seed": 1}),
                 Cell("tests.test_sweep:failing_cell")]
        with pytest.raises(RuntimeError, match="cell exploded"):
            run_sweep(cells, processes=2)


class TestMetricsMerge:
    def test_dumps_collected_and_merged(self):
        registry = MetricsRegistry()
        cells = [Cell(CELL, {"seed": s}) for s in (1, 2, 3)]
        res = run_sweep(cells, processes=1, collect_metrics=True,
                        merge_into=registry)
        assert len(res.metrics_dumps) == 3
        assert registry.value("sweep.test.cells") == 3
        hist = registry.histogram("sweep.test.value")
        assert hist.count == 3

    def test_pool_merge_equals_inline_merge(self):
        cells = [Cell(CELL, {"seed": s}) for s in (1, 2, 3, 4)]
        inline, pooled = MetricsRegistry(), MetricsRegistry()
        run_sweep(cells, processes=1, collect_metrics=True, merge_into=inline)
        run_sweep(cells, processes=2, collect_metrics=True, merge_into=pooled)
        assert inline.snapshot() == pooled.snapshot()

    def test_enabled_parent_registry_unpolluted_without_merge(self):
        """collect_metrics isolates cell metrics; nothing leaks in."""
        obs = configure(trace=False)
        try:
            run_sweep([Cell(CELL, {"seed": 5})], processes=1,
                      collect_metrics=True)
            assert obs.metrics.value("sweep.test.cells") == 0
        finally:
            disable()

    def test_no_collection_records_into_parent(self):
        obs = configure(trace=False)
        try:
            run_sweep([Cell(CELL, {"seed": 5})], processes=1)
            assert obs.metrics.value("sweep.test.cells") == 1
        finally:
            disable()


class TestChaosSweepWiring:
    def test_chaos_sweep_accepts_processes(self):
        import inspect

        from repro.experiments.exp_chaos import chaos_sweep

        assert "processes" in inspect.signature(chaos_sweep).parameters

    def test_cli_has_sweep_subcommand(self):
        from repro.cli import cmd_sweep, main  # noqa: F401

        assert main(["sweep", "--seeds", "0"]) == 2  # validated, no run

    def test_cli_sweep_metrics_out_writes_merged_dump(self, tmp_path):
        import json

        from repro.cli import main
        from repro.obs.ledger import decode_metrics_dump

        out = tmp_path / "metrics.json"
        rc = main(["sweep", "--scenario", "slow-ebs", "--policy", "on",
                   "--seeds", "1", "--processes", "1",
                   "--metrics-out", str(out),
                   "--runs-dir", str(tmp_path / "runs")])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["schema_version"] == 1
        rows = decode_metrics_dump(payload["metrics"])
        names = {name for name, _, _, _ in rows}
        assert any(name.startswith("cloud.") for name in names)
        # The sweep ran un-ledgered cells through a private registry; the
        # written dump is the parent's post-merge view.
        reg = MetricsRegistry()
        reg.merge_dump(rows)
        assert reg.dump() == rows
