"""Differential tests: event-driven runner vs arithmetic runner."""

import numpy as np
import pytest

from repro.apps import PosCostProfile, PosTaggerApplication
from repro.cloud import Cloud, Workload
from repro.core import StaticProvisioner, reshape
from repro.corpus import text_400k_like
from repro.perfmodel.regression import fit_affine
from repro.runner import execute_plan
from repro.runner.event_driven import FleetTimeline, execute_plan_event_driven


def pos_workload():
    return Workload("postag", PosTaggerApplication(), PosCostProfile())


def make_plan(deadline=30.0, scale=2e-3, strategy="uniform"):
    x = np.array([1e5, 1e6, 5e6])
    model = fit_affine(x, 0.327 + 0.865e-4 * x)
    cat = text_400k_like(scale=scale)
    return StaticProvisioner(model).plan(
        list(reshape(cat, None).units), deadline, strategy=strategy)


class TestDifferentialEquality:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    @pytest.mark.parametrize("strategy", ["uniform", "first-fit"])
    def test_reports_identical(self, seed, strategy):
        plan = make_plan(strategy=strategy)
        wl = pos_workload()
        arith = execute_plan(Cloud(seed=seed), wl, plan)
        event, _ = execute_plan_event_driven(Cloud(seed=seed), wl, plan)
        assert [r.duration for r in arith.runs] == [r.duration for r in event.runs]
        assert [r.instance_id for r in arith.runs] == [r.instance_id for r in event.runs]
        assert arith.makespan == event.makespan
        assert arith.n_missed == event.n_missed
        assert arith.instance_hours == event.instance_hours

    def test_ledgers_identical(self):
        plan = make_plan()
        wl = pos_workload()
        ca, cb = Cloud(seed=5), Cloud(seed=5)
        execute_plan(ca, wl, plan)
        execute_plan_event_driven(cb, wl, plan)
        a = [(r.instance_id, r.hours, r.cost) for r in ca.ledger.records]
        b = [(r.instance_id, r.hours, r.cost) for r in cb.ledger.records]
        assert a == b


class TestTimeline:
    def test_completion_counts_monotone(self):
        plan = make_plan()
        _, timeline = execute_plan_event_driven(Cloud(seed=9), pos_workload(), plan)
        completed = [c for _, _, c in timeline.points]
        assert completed == sorted(completed)
        assert completed[-1] == plan.n_instances

    def test_working_plus_completed_is_fleet(self):
        plan = make_plan()
        _, timeline = execute_plan_event_driven(Cloud(seed=9), pos_workload(), plan)
        for _, working, completed in timeline.points:
            assert working + completed == plan.n_instances

    def test_times_nondecreasing(self):
        plan = make_plan()
        _, timeline = execute_plan_event_driven(Cloud(seed=9), pos_workload(), plan)
        times = timeline.completion_times
        assert times == sorted(times)

    def test_completed_at_queries(self):
        plan = make_plan()
        _, timeline = execute_plan_event_driven(Cloud(seed=9), pos_workload(), plan)
        t_last = timeline.points[-1][0]
        assert timeline.completed_at(t_last) == plan.n_instances
        assert timeline.completed_at(0.0) == 0

    def test_empty_timeline(self):
        t = FleetTimeline()
        assert t.completed_at(100.0) == 0
        assert t.completion_times == []
