"""Tests for the virtual file system."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.random import RngStream
from repro.vfs import Catalogue, Segment, TextStats, VirtualFile


def vfile(path: str, size: int, seed: int = 1, **stats) -> VirtualFile:
    return VirtualFile(path=path, size=size, stats=TextStats(**stats), content_seed=seed)


class TestTextStats:
    def test_tokens_scale_with_bytes(self):
        s = TextStats(avg_word_len=5.0)
        assert s.tokens_in(6000) == 1000

    def test_markup_discounted(self):
        plain = TextStats(markup_fraction=0.0)
        html = TextStats(markup_fraction=0.5)
        assert html.tokens_in(1000) < plain.tokens_in(1000)

    def test_sentences_nonzero_for_nonempty(self):
        assert TextStats().sentences_in(100) >= 1
        assert TextStats().sentences_in(0) == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TextStats(avg_word_len=0)
        with pytest.raises(ValueError):
            TextStats(markup_fraction=1.0)


class TestVirtualFile:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            vfile("a", -1)

    def test_materialize_exact_size(self):
        f = vfile("a.txt", 500, seed=42)
        data = f.materialize()
        assert len(data) == 500

    def test_materialize_deterministic(self):
        f = vfile("a.txt", 300, seed=7)
        assert f.materialize() == f.materialize()

    def test_materialize_seed_sensitivity(self):
        a = vfile("a.txt", 300, seed=1).materialize()
        b = vfile("b.txt", 300, seed=2).materialize()
        assert a != b

    def test_renderer_size_mismatch_rejected(self):
        f = vfile("a.txt", 100)
        with pytest.raises(ValueError):
            f.materialize(renderer=lambda vf: b"short")

    def test_as_item(self):
        it = vfile("x", 12).as_item()
        assert it.key == "x" and it.size == 12


class TestSegment:
    def test_size_is_member_sum(self):
        seg = Segment("s0", (vfile("a", 100), vfile("b", 50)))
        assert seg.size == 150 and seg.n_members == 2

    def test_materialize_concatenates(self):
        seg = Segment("s0", (vfile("a", 40, seed=1), vfile("b", 30, seed=2)))
        data = seg.materialize()
        assert data == vfile("a", 40, seed=1).materialize() + b"\n" + vfile("b", 30, seed=2).materialize()

    def test_empty_segment(self):
        seg = Segment("s", ())
        assert seg.size == 0 and seg.materialize() == b""

    def test_stats_volume_weighted(self):
        a = vfile("a", 900, avg_sentence_words=10.0)
        b = vfile("b", 100, avg_sentence_words=30.0)
        seg = Segment("s", (a, b))
        assert seg.stats().avg_sentence_words == pytest.approx(12.0)


def make_catalogue(sizes):
    return Catalogue([vfile(f"f{i:04d}", s, seed=i) for i, s in enumerate(sizes)])


class TestCatalogue:
    def test_totals(self):
        c = make_catalogue([10, 20, 30])
        assert len(c) == 3
        assert c.total_size == 60
        assert c.max_file_size == 30

    def test_duplicate_paths_rejected(self):
        with pytest.raises(ValueError):
            Catalogue([vfile("same", 1), vfile("same", 2)])

    def test_head_by_volume(self):
        c = make_catalogue([10, 20, 30, 40])
        h = c.head_by_volume(25)
        assert [f.size for f in h] == [10, 20]

    def test_head_by_volume_exact_boundary(self):
        c = make_catalogue([10, 20, 30])
        assert [f.size for f in c.head_by_volume(30)] == [10, 20]

    def test_head_by_volume_overshoot(self):
        c = make_catalogue([10, 20])
        assert len(c.head_by_volume(10**9)) == 2

    def test_head_by_volume_nonpositive(self):
        assert len(make_catalogue([5]).head_by_volume(0)) == 0

    def test_sample_by_volume_reaches_target(self):
        c = make_catalogue([100] * 50)
        s = c.sample_by_volume(1000, RngStream(3))
        assert s.total_size >= 1000
        assert s.total_size <= 1100  # at most one extra file

    def test_sample_without_replacement_exclusion(self):
        c = make_catalogue([100] * 10)
        s1 = c.sample_by_volume(300, RngStream(3))
        s2 = c.sample_by_volume(300, RngStream(4), exclude={f.path for f in s1})
        assert not ({f.path for f in s1} & {f.path for f in s2})

    def test_sample_deterministic(self):
        c = make_catalogue([100] * 30)
        a = [f.path for f in c.sample_by_volume(500, RngStream(9))]
        b = [f.path for f in c.sample_by_volume(500, RngStream(9))]
        assert a == b

    def test_partition_volumes_conserves(self):
        c = make_catalogue([10, 20, 30, 40, 50])
        parts = c.partition_volumes(3)
        assert len(parts) == 3
        assert sum(p.total_size for p in parts) == c.total_size

    def test_size_histogram_counts(self):
        c = make_catalogue([5, 15, 15, 25])
        edges, counts = c.size_histogram(bin_width=10)
        assert counts[0] == 1 and counts[1] == 2 and counts[2] == 1

    def test_size_histogram_max_size_filter(self):
        c = make_catalogue([5, 500])
        _, counts = c.size_histogram(bin_width=10, max_size=100)
        assert counts.sum() == 1

    def test_size_histogram_bad_width(self):
        with pytest.raises(ValueError):
            make_catalogue([1]).size_histogram(0)

    def test_describe(self):
        d = make_catalogue([10, 30]).describe()
        assert d["files"] == 2 and d["total"] == 40 and d["max"] == 30

    def test_empty_catalogue(self):
        c = Catalogue([])
        assert c.total_size == 0 and c.max_file_size == 0
        assert c.describe()["files"] == 0

    @given(st.lists(st.integers(min_value=1, max_value=1000), max_size=30),
           st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=60)
    def test_head_by_volume_is_minimal_prefix(self, sizes, vol):
        c = make_catalogue(sizes)
        h = c.head_by_volume(vol)
        if h.total_size < vol:
            assert len(h) == len(c)  # exhausted
        elif len(h) > 0:
            # dropping the last file would fall below the target
            assert h.total_size - h[len(h) - 1].size < vol
