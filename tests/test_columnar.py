"""Tests for the columnar fleet stack.

The columnar path (InstanceColumn / launch_column / run_column /
record_column / execute_plan_columnar) is a *new* deterministic API, not a
re-draw of the scalar path: its RNG forks live in their own namespace.
What these tests pin down is the semantic contract:

* vectorized kernels compute member-for-member the same arithmetic as the
  scalar classes (factor mixture, duration composition, ceil-hour bill);
* columnar runs are bit-reproducible per seed;
* installing columnar launches never shifts scalar-path draws;
* the two-event engine flow produces a coherent timeline and ledger.
"""

import numpy as np
import pytest

from repro.apps import PosCostProfile, PosTaggerApplication
from repro.cloud import Cloud, ExecutionService, Workload
from repro.cloud.instance import (
    CPU_HETEROGENEITY,
    HeterogeneityModel,
    InstanceColumn,
    InstanceError,
)
from repro.core import StaticProvisioner, reshape
from repro.corpus import text_400k_like
from repro.perfmodel.regression import fit_affine
from repro.runner import execute_plan_columnar, execute_uniform_fleet
from repro.sim.random import RngStream


def model():
    x = np.array([1e5, 1e6, 5e6])
    return fit_affine(x, 0.327 + 0.865e-4 * x)


def pos_workload():
    return Workload("postag", PosTaggerApplication(), PosCostProfile())


def make_plan(deadline=30.0, strategy="uniform", scale=1e-3):
    cat = text_400k_like(scale=scale)
    units = list(reshape(cat, None).units)
    return StaticProvisioner(model()).plan(units, deadline, strategy=strategy)


def some_units(scale=1e-3, k=5):
    cat = text_400k_like(scale=scale)
    return list(reshape(cat, None).units)[:k]


class TestDrawFactors:
    def test_deterministic_per_seed(self):
        m = CPU_HETEROGENEITY
        a = m.draw_factors(RngStream(42), 1000)
        b = m.draw_factors(RngStream(42), 1000)
        assert np.array_equal(a, b)

    def test_same_mixture_support_as_scalar(self):
        """Vector draws land in exactly the scalar mixture's support."""
        m = HeterogeneityModel()
        f = m.draw_factors(RngStream(7), 5000)
        lo = m.very_slow_range[0]
        assert float(f.min()) >= lo
        # good instances are clamped at 0.8 from below, same as scalar
        good = f[f >= 0.8]
        assert good.size > 0.7 * f.size  # the mixture is mostly good

    def test_mixture_proportions_roughly_match(self):
        m = HeterogeneityModel()
        f = m.draw_factors(RngStream(3), 20000)
        very_slow = (f < m.slow_range[0]).mean()
        assert very_slow == pytest.approx(m.p_very_slow, abs=0.01)


class TestInstanceColumn:
    def _column(self, n=4, t0=0.0):
        rng = RngStream(1)
        from repro.cloud.types import SMALL, US_EAST

        return InstanceColumn(
            "c-0001", SMALL, US_EAST.zones[0], t0,
            boot_delay=rng.uniforms(90.0, 210.0, n),
            cpu_factor=np.ones(n), io_factor=np.ones(n))

    def test_barrier_is_slowest_boot(self):
        col = self._column()
        assert col.barrier == pytest.approx(float(col.ready_at.max()))

    def test_lifecycle_guards(self):
        col = self._column()
        with pytest.raises(InstanceError):
            col.mark_running_all(0.0)        # before the barrier
        col.mark_running_all(col.barrier)
        with pytest.raises(InstanceError):
            col.mark_running_all(col.barrier)  # double start
        with pytest.raises(InstanceError):
            col.terminate_all(0.0)           # before running_since
        col.terminate_all(col.barrier + 10.0)
        with pytest.raises(InstanceError):
            col.terminate_all(col.barrier + 20.0)  # double terminate

    def test_mismatched_arrays_rejected(self):
        from repro.cloud.types import SMALL, US_EAST

        with pytest.raises(InstanceError):
            InstanceColumn("c-x", SMALL, US_EAST.zones[0], 0.0,
                           boot_delay=np.ones(3), cpu_factor=np.ones(2),
                           io_factor=np.ones(3))


class TestLaunchColumn:
    def test_deterministic_per_seed(self):
        a = Cloud(seed=11).launch_column(64)
        b = Cloud(seed=11).launch_column(64)
        assert np.array_equal(a.boot_delay, b.boot_delay)
        assert np.array_equal(a.cpu_factor, b.cpu_factor)
        assert np.array_equal(a.io_factor, b.io_factor)

    def test_does_not_shift_scalar_draws(self):
        """A columnar launch is RNG-invisible to later scalar launches."""
        plain = Cloud(seed=5)
        mixed = Cloud(seed=5)
        mixed.launch_column(100)
        i1 = plain.launch_instance(wait=False)
        i2 = mixed.launch_instance(wait=False)
        assert i1.cpu_factor == i2.cpu_factor
        assert i1.io_factor == i2.io_factor
        assert i1.boot_delay == i2.boot_delay

    def test_boot_delays_in_configured_range(self):
        cloud = Cloud(seed=2, boot_delay_range=(50.0, 60.0))
        col = cloud.launch_column(200)
        assert float(col.boot_delay.min()) >= 50.0
        assert float(col.boot_delay.max()) <= 60.0

    def test_rejects_empty_column(self):
        with pytest.raises(InstanceError):
            Cloud(seed=0).launch_column(0)


class TestRunColumnArithmetic:
    def test_composition_matches_scalar_formula(self):
        """With noise and setup spread zeroed, t = setup + io/f_io + cpu/f_cpu
        exactly — the same composition ExecutionService.run charges."""
        profile = PosCostProfile(jvm_startup_sigma=0.0)
        wl = Workload("postag", PosTaggerApplication(), profile)
        cloud = Cloud(seed=3)
        svc = ExecutionService(cloud, noise_sigma=0.0)
        col = cloud.launch_column(8)
        cloud.advance(col.barrier - cloud.now)
        col.mark_running_all(cloud.now)
        io_ref = np.linspace(10.0, 80.0, 8)
        cpu_ref = np.linspace(5.0, 40.0, 8)
        t = svc.run_column(col, wl, io_ref, cpu_ref)
        expected = (profile.jvm_startup_median
                    + io_ref / col.io_factor + cpu_ref / col.cpu_factor)
        assert np.allclose(t, expected, rtol=0, atol=1e-12)

    def test_requires_running_column(self):
        cloud = Cloud(seed=4)
        svc = ExecutionService(cloud)
        col = cloud.launch_column(4)
        with pytest.raises(InstanceError):
            svc.run_column(col, pos_workload(), np.ones(4), np.ones(4))

    def test_repeat_runs_draw_fresh_noise(self):
        cloud = Cloud(seed=6)
        svc = ExecutionService(cloud)
        col = cloud.launch_column(16)
        cloud.advance(col.barrier - cloud.now)
        col.mark_running_all(cloud.now)
        t1 = svc.run_column(col, pos_workload(), np.ones(16), np.ones(16))
        t2 = svc.run_column(col, pos_workload(), np.ones(16), np.ones(16))
        assert not np.array_equal(t1, t2)


class TestRecordColumn:
    def test_hours_match_scalar_billing(self):
        """Vectorized ceil-hours agree with the scalar ledger, member for
        member, including the zero-duration and boundary cases."""
        from repro.cloud.billing import BillingLedger

        start = 100.0
        ends = np.array([start, start + 1.0, start + 3600.0,
                         start + 3600.0 + 1e-6, start + 7200.0])
        col_ledger = BillingLedger()
        rec = col_ledger.record_column("c-0001", "m1.small", start, ends, 0.085)
        scalar_ledger = BillingLedger()
        for i, end in enumerate(ends):
            scalar_ledger.record(f"i-{i}", "m1.small", start, float(end), 0.085)
        assert rec.hours == scalar_ledger.total_instance_hours
        assert rec.cost == pytest.approx(scalar_ledger.total_cost)
        assert rec.total_wasted == pytest.approx(
            scalar_ledger.total_wasted_seconds)

    def test_negative_interval_rejected(self):
        from repro.cloud.billing import BillingLedger

        with pytest.raises(ValueError):
            BillingLedger().record_column("c", "t", 10.0,
                                          np.array([5.0]), 0.085)

    def test_ledger_totals_include_columns(self):
        from repro.cloud.billing import BillingLedger

        ledger = BillingLedger()
        ledger.record("i-1", "m1.small", 0.0, 1800.0, 0.085)
        ledger.record_column("c-1", "m1.small", 0.0,
                             np.array([1800.0, 5400.0]), 0.085)
        assert ledger.total_instance_hours == 1 + 3
        assert ledger.summary()["instances"] == 3


class TestColumnarRunner:
    def test_plan_columnar_report_shape(self):
        cloud = Cloud(seed=1)
        plan = make_plan()
        report = execute_plan_columnar(cloud, pos_workload(), plan)
        assert report.n_instances == plan.n_instances
        assert report.makespan > 0
        assert report.ends.shape == report.durations.shape
        assert np.allclose(report.ends, report.work_start + report.durations)

    def test_deterministic_per_seed(self):
        plan = make_plan()
        r1 = execute_plan_columnar(Cloud(seed=9), pos_workload(), plan)
        r2 = execute_plan_columnar(Cloud(seed=9), pos_workload(), plan)
        assert np.array_equal(r1.durations, r2.durations)
        assert r1.billing == r2.billing

    def test_engine_clock_lands_on_makespan(self):
        cloud = Cloud(seed=2)
        report = execute_uniform_fleet(cloud, pos_workload(), 32,
                                       some_units())
        assert cloud.now == pytest.approx(float(report.ends.max()))

    def test_timeline_is_bulk_filled_and_ordered(self):
        cloud = Cloud(seed=3)
        report = execute_uniform_fleet(cloud, pos_workload(), 50,
                                       some_units())
        points = report.timeline.points
        assert len(points) == 50
        times = [t for t, _, _ in points]
        assert times == sorted(times)
        # completed counts 1..n, working counts n-1..0
        assert [c for _, _, c in points] == list(range(1, 51))
        assert [w for _, w, _ in points] == list(range(49, -1, -1))

    def test_billing_written_once_and_consistent(self):
        cloud = Cloud(seed=4)
        report = execute_uniform_fleet(cloud, pos_workload(), 20,
                                       some_units())
        assert len(cloud.ledger.column_records) == 1
        assert report.billing is cloud.ledger.column_records[0]
        assert report.instance_hours >= 20  # every member entered an hour
        assert cloud.ledger.total_cost == pytest.approx(report.cost)

    def test_bill_false_skips_ledger(self):
        cloud = Cloud(seed=5)
        report = execute_uniform_fleet(cloud, pos_workload(), 10,
                                       some_units(), bill=False)
        assert report.billing is None
        assert not cloud.ledger.column_records
        assert not cloud.columns[0].running  # still wound down

    def test_two_events_only(self):
        """The whole campaign is exactly two engine events."""
        cloud = Cloud(seed=6)
        fired_before = cloud.engine.events_fired
        execute_uniform_fleet(cloud, pos_workload(), 1000, some_units())
        assert cloud.engine.events_fired - fired_before == 2

    def test_misses_counted_vectorized(self):
        cloud = Cloud(seed=7)
        report = execute_uniform_fleet(cloud, pos_workload(), 30,
                                       some_units(), deadline=1e-3)
        assert report.n_missed == 30

    def test_empty_plan(self):
        from repro.core.planner import ProvisioningPlan

        plan = ProvisioningPlan(deadline=30.0, planning_deadline=30.0,
                                strategy="uniform", predictor_name="test",
                                assignments=[], predicted_times=[])
        report = execute_plan_columnar(Cloud(seed=8), pos_workload(), plan)
        assert report.n_instances == 0
        assert report.makespan == 0.0

    def test_scalar_campaign_unchanged_by_columnar_neighbour(self):
        """Running a columnar fleet first must not perturb a scalar run
        (disjoint RNG namespaces — the non-interference contract)."""
        from repro.runner import execute_plan

        plan = make_plan()
        wl = pos_workload()
        plain = Cloud(seed=12)
        r_plain = execute_plan(plain, wl, plan)
        mixed = Cloud(seed=12)
        execute_uniform_fleet(mixed, wl, 40, some_units())
        r_mixed = execute_plan(mixed, wl, make_plan())
        assert [a.duration for a in r_plain.runs] == \
            [b.duration for b in r_mixed.runs]
