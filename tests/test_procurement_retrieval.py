"""Tests for the procurement advisor and output-retrieval accounting."""

import numpy as np
import pytest

from repro.apps import GrepApplication, GrepCostProfile
from repro.cloud import Cloud, Workload
from repro.core import (
    StaticProvisioner,
    choose_procurement,
    reshape,
    spot_completion_probability,
)
from repro.corpus import text_400k_like
from repro.perfmodel.regression import fit_affine
from repro.runner import execute_plan
from repro.sim.random import RngStream
from repro.units import KB


class TestSpotCompletionProbability:
    def test_monotone_in_bid(self):
        rng = RngStream(10)
        ps = []
        for bid in (0.03, 0.045, 0.09):
            p, _ = spot_completion_probability(rng.fork(str(bid)), bid,
                                               work_hours=30, deadline_hours=60,
                                               n_paths=100)
            ps.append(p)
        assert ps == sorted(ps)

    def test_monotone_in_horizon(self):
        rng = RngStream(11)
        p_tight, _ = spot_completion_probability(rng.fork("a"), 0.042, 40, 45,
                                                 n_paths=100)
        p_loose, _ = spot_completion_probability(rng.fork("a"), 0.042, 40, 200,
                                                 n_paths=100)
        assert p_loose >= p_tight

    def test_sure_bid_completes_everywhere(self):
        p, cost = spot_completion_probability(RngStream(1), 10.0, 5, 10,
                                              n_paths=50)
        assert p == 1.0
        assert cost > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            spot_completion_probability(RngStream(1), 0.05, 1, 10, n_paths=0)
        with pytest.raises(ValueError):
            spot_completion_probability(RngStream(1), 0.05, 1, 0)


class TestChooseProcurement:
    def test_tight_deadline_forces_on_demand(self):
        """The paper's case: makespan constraints → on-demand.  With zero
        slack, spot must clear its bid every single hour, which no
        affordable bid guarantees at 95% confidence."""
        decision = choose_procurement(RngStream(2), work_hours=20,
                                      deadline_hours=20, n_paths=60)
        assert decision.mode == "on-demand"
        assert decision.completion_probability == 1.0
        assert decision.saving == 0.0

    def test_loose_horizon_prefers_spot(self):
        decision = choose_procurement(RngStream(3), work_hours=20,
                                      deadline_hours=500, n_paths=60)
        assert decision.mode == "spot"
        assert decision.expected_cost < decision.on_demand_cost
        assert decision.completion_probability >= 0.95
        assert decision.bid is not None

    def test_confidence_knob_tightens_choice(self):
        loose = choose_procurement(RngStream(4), work_hours=30,
                                   deadline_hours=60, confidence=0.5,
                                   n_paths=80)
        strict = choose_procurement(RngStream(4), work_hours=30,
                                    deadline_hours=60, confidence=0.999,
                                    n_paths=80)
        # stricter confidence can only move toward (or keep) on-demand
        if strict.mode == "spot":
            assert loose.mode == "spot"
            assert strict.completion_probability >= loose.completion_probability

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_procurement(RngStream(1), work_hours=0, deadline_hours=10)
        with pytest.raises(ValueError):
            choose_procurement(RngStream(1), work_hours=1, deadline_hours=10,
                               confidence=0.0)


class TestRetrievalAccounting:
    def model(self):
        x = np.array([1e6, 1e7, 1e8])
        return fit_affine(x, 0.2 + 1.33e-8 * x)

    def test_reshaped_output_retrieves_faster(self):
        """§1 end-to-end: the reshaped plan's results come back faster."""
        cat = text_400k_like(scale=5e-3)
        wl = Workload("grep", GrepApplication(), GrepCostProfile())
        prov = StaticProvisioner(self.model())

        orig_units = list(reshape(cat, None).units)
        merged_units = list(reshape(cat, 200 * KB).units)
        plan_orig = prov.plan(orig_units, 30.0, strategy="uniform")
        plan_merged = prov.plan(merged_units, 30.0, strategy="uniform")

        rep_orig = execute_plan(Cloud(seed=12), wl, plan_orig,
                                measure_retrieval=True)
        rep_merged = execute_plan(Cloud(seed=12), wl, plan_merged,
                                  measure_retrieval=True)
        assert rep_orig.retrieval_seconds is not None
        assert rep_merged.retrieval_seconds is not None
        assert rep_merged.retrieval_seconds < rep_orig.retrieval_seconds

    def test_retrieval_not_measured_by_default(self):
        cat = text_400k_like(scale=1e-3)
        wl = Workload("grep", GrepApplication(), GrepCostProfile())
        plan = StaticProvisioner(self.model()).plan(list(cat), 30.0)
        rep = execute_plan(Cloud(seed=13), wl, plan)
        assert rep.retrieval_seconds is None
