"""Differential bit-equality: broker stacks vs the frozen acquisition policies.

The :mod:`repro.capacity` layer rewrote ``FleetLaunchAcquisition``,
``LeaseAcquisition`` and ``SpotAcquisition`` as thin broker
configurations of one :class:`~repro.capacity.BrokerAcquisition`.  These
tests wire the frozen pre-broker policies
(``tests/reference_acquisitions.py``) into the same
:class:`~repro.runner.core.ExecutionCore` and assert *bit* equality —
reports, cloud ledgers, lease statistics, spot statistics, engine clocks
— against the broker-routed public entry points, across seeds ×
scenarios (clean, capacity-crunch chaos, spot interruption regimes).
No tolerance anywhere: ``==`` on floats is the point.
"""

import pytest

from tests.reference_acquisitions import (
    ReferenceFleetLaunchAcquisition,
    ReferenceLeaseAcquisition,
    execute_plan_spot_reference,
)
from tests.test_runner_core_differential import (
    assert_ledgers_equal,
    assert_reports_equal,
    chaos_cloud,
    make_plan,
    pos_workload,
)
from repro.capacity import (
    BrokerAcquisition,
    LadderBroker,
    OnDemandBroker,
    SpotBroker,
)
from repro.chaos import FaultInjector, get_spot_regime
from repro.cloud import Cloud, FailureModel
from repro.cloud.spot import SpotMarketBoard
from repro.experiments.exp_chaos import _campaign
from repro.fleet import LeaseManager
from repro.resilience import ResilientLauncher, SpotFallbackPolicy, SpotLadder
from repro.runner import (
    FaultPolicy,
    execute_fault_tolerant,
    execute_on_fleet,
    execute_plan,
    execute_plan_spot,
)
from repro.runner.core import (
    CrashCompletion,
    CrashProgress,
    ExecutionCore,
    LeaseCompletion,
    RunToCompletion,
    StaticCompletion,
)
from repro.runner.spot import SpotCompletion, SpotProgress, SpotRunStats

SEEDS = [1, 7, 42]
REGIMES = [None, "calm", "choppy", "eviction-storm"]


def spot_cloud(seed, regime):
    """A cloud with one spot-regime scenario replayed (or clean)."""
    if regime is None:
        return Cloud(seed=seed)
    scenario = get_spot_regime(regime).scenario(seed)
    return Cloud(seed=seed, chaos=FaultInjector([scenario], seed=seed))


def assert_spot_equal(a, b):
    """Bit-equality of two SpotRunResults: report, stats, timeline."""
    assert_reports_equal(a.report, b.report)
    assert a.stats.summary() == b.stats.summary()
    assert a.stats.total_cost == b.stats.total_cost
    assert a.timeline.points == b.timeline.points


class TestFleetBrokerDifferential:
    """execute_plan's broker stack vs the frozen fleet acquisition."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("scenario", [None, "capacity-crunch"])
    def test_plain(self, seed, scenario):
        plan, wl = make_plan(), pos_workload()
        ca = Cloud(seed=seed) if scenario is None else chaos_cloud(seed,
                                                                   scenario)
        cb = Cloud(seed=seed) if scenario is None else chaos_cloud(seed,
                                                                   scenario)
        new = execute_plan(ca, wl, plan)
        ref = ExecutionCore(
            cb, wl, plan,
            acquisition=ReferenceFleetLaunchAcquisition(),
            progress=RunToCompletion(),
            completion=StaticCompletion(),
            label="execute_plan").run().report
        assert_reports_equal(new, ref)
        assert_ledgers_equal(ca, cb)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_resilient(self, seed):
        plan, wl = make_plan(), pos_workload()
        ca = chaos_cloud(seed, "capacity-crunch")
        cb = chaos_cloud(seed, "capacity-crunch")
        new = execute_plan(ca, wl, plan, launcher=ResilientLauncher(ca))
        ref = ExecutionCore(
            cb, wl, plan,
            acquisition=ReferenceFleetLaunchAcquisition(
                launcher=ResilientLauncher(cb)),
            progress=RunToCompletion(),
            completion=StaticCompletion(),
            label="execute_plan").run().report
        assert_reports_equal(new, ref)
        assert_ledgers_equal(ca, cb)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fault_tolerant_replacements(self, seed):
        plan, wl = make_plan(deadline=200.0), pos_workload()
        fm = FailureModel(mtbf_hours=0.05)
        pol = FaultPolicy(batch_units=10)
        ca = Cloud(seed=seed, failure_model=fm)
        cb = Cloud(seed=seed, failure_model=fm)
        new_report, new_events = execute_fault_tolerant(ca, wl, plan,
                                                        policy=pol)
        core = ExecutionCore(
            cb, wl, plan,
            acquisition=ReferenceFleetLaunchAcquisition(
                replacement_tenant="fault-tolerant"),
            progress=CrashProgress(pol),
            completion=CrashCompletion(),
            strategy=f"{plan.strategy}+fault-tolerant",
            label="execute_fault_tolerant")
        result = core.run()
        assert new_events, "scenario too calm — no crashes exercised"
        assert_reports_equal(new_report, result.report)
        assert [(e.bin_index, e.instance_id, e.at_elapsed, e.lost_batch_units)
                for e in new_events] == \
               [(e.bin_index, e.instance_id, e.at_elapsed, e.lost_batch_units)
                for e in result.events]
        assert_ledgers_equal(ca, cb)


class TestLeaseBrokerDifferential:
    """execute_on_fleet's warm-lease broker vs the frozen lazy policy."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_leased(self, seed):
        plan, wl = make_plan(), pos_workload()
        ca, cb = Cloud(seed=seed), Cloud(seed=seed)
        ma, mb = LeaseManager(ca), LeaseManager(cb)
        new = execute_on_fleet(ma, wl, plan, tenant="t",
                               campaign="uniform-campaign")
        ref = ExecutionCore(
            cb, wl, plan,
            acquisition=ReferenceLeaseAcquisition(mb, tenant="t",
                                                  campaign="uniform-campaign"),
            progress=RunToCompletion(),
            completion=LeaseCompletion(mb),
            strategy=f"{plan.strategy}+fleet",
            label="execute_on_fleet").run().report
        assert_reports_equal(new, ref)
        assert ma.stats() == mb.stats()
        ma.shutdown()
        mb.shutdown()
        assert_ledgers_equal(ca, cb)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_leased_chaos_identical(self, seed):
        """Under capacity-crunch a cold boot can be refused with no pooled
        fallback; whether the campaign completes or dies with a LeaseError
        is seed-dependent, but the broker path and the frozen policy must
        land on the same outcome either way."""
        from repro.fleet.lease import LeaseError

        plan, wl = make_plan(), pos_workload()
        ca = chaos_cloud(seed, "capacity-crunch")
        cb = chaos_cloud(seed, "capacity-crunch")
        ma, mb = LeaseManager(ca), LeaseManager(cb)
        new = ref = err_new = err_ref = None
        try:
            new = execute_on_fleet(ma, wl, plan, tenant="t",
                                   campaign="uniform-campaign")
        except LeaseError as e:
            err_new = str(e)
        try:
            ref = ExecutionCore(
                cb, wl, plan,
                acquisition=ReferenceLeaseAcquisition(
                    mb, tenant="t", campaign="uniform-campaign"),
                progress=RunToCompletion(),
                completion=LeaseCompletion(mb),
                strategy=f"{plan.strategy}+fleet",
                label="execute_on_fleet").run().report
        except LeaseError as e:
            err_ref = str(e)
        assert err_new == err_ref
        if new is not None:
            assert ref is not None
            assert_reports_equal(new, ref)
        assert ma.stats() == mb.stats()
        assert ca.now == cb.now


class TestSpotBrokerDifferential:
    """execute_plan_spot's SpotBroker stack vs the frozen spot policies.

    The campaign plan comes from the chaos experiment (real 400k-file
    scale), so the regimes actually land interruptions and walk the
    ladder's rungs — rebids, retypes, queues and mid-run escalations all
    happen inside these runs.
    """

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("regime", REGIMES)
    def test_regimes(self, seed, regime):
        wl, plan = _campaign(seed)
        ca, cb = spot_cloud(seed, regime), spot_cloud(seed, regime)
        new = execute_plan_spot(ca, wl, plan)
        ref = execute_plan_spot_reference(cb, wl, plan)
        assert_spot_equal(new, ref)
        assert_ledgers_equal(ca, cb)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_launch_chaos(self, seed):
        """Acquisition-time escalation/refusal paths under launch chaos."""
        plan, wl = make_plan(deadline=7200.0), pos_workload()
        ca = chaos_cloud(seed, "capacity-crunch")
        cb = chaos_cloud(seed, "capacity-crunch")
        new = execute_plan_spot(ca, wl, plan)
        ref = execute_plan_spot_reference(cb, wl, plan)
        assert_spot_equal(new, ref)
        assert_ledgers_equal(ca, cb)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_escalation_refusal_path(self, seed):
        """escalate=False: refused bins fail identically via the broker."""
        wl, plan = _campaign(seed)
        policy = SpotFallbackPolicy(escalate=False, checkpoint=False,
                                    ladder=False)
        ca = spot_cloud(seed, "eviction-storm")
        cb = spot_cloud(seed, "eviction-storm")
        new = execute_plan_spot(ca, wl, plan, policy=policy)
        ref = execute_plan_spot_reference(cb, wl, plan, policy=policy)
        assert_spot_equal(new, ref)
        assert_ledgers_equal(ca, cb)


class TestSharedUnitsAccounting:
    """Pin the deduplicated restart/billing helpers at both call sites.

    ``resume_time`` and ``ceil_hour_cost`` replaced hand-rolled copies in
    ``repro.runner.spot`` and ``repro.resilience.launch``; these checks
    fail if either module regrows a local variant or the shared formulas
    drift from the historical bit-exact arithmetic.
    """

    def test_call_sites_share_the_units_helpers(self):
        import repro.resilience.launch as launch
        import repro.runner.spot as spot
        import repro.units as units

        assert spot.resume_time is units.resume_time
        assert spot.ceil_hour_cost is units.ceil_hour_cost
        assert launch.resume_time is units.resume_time

    def test_resume_time_matches_historical_formulas(self):
        from repro.units import resume_time

        # runner.spot's old inline restart: max(resume_at, ready) + overhead
        for resume_at, ready, overhead in [(10.0, 3.0, 30.0),
                                           (3.0, 10.0, 30.0),
                                           (7.25, 7.25, 0.0)]:
            t = max(resume_at, ready)
            t += overhead
            assert resume_time(resume_at, ready, overhead) == t
        # resilience.launch's old inline mark_running: max(now, ready_at)
        for now, ready_at in [(100.0, 42.0), (42.0, 100.0), (5.5, 5.5)]:
            assert resume_time(now, ready_at) == max(now, ready_at)

    def test_ceil_hour_cost_matches_historical_formula(self):
        import math

        from repro.units import HOUR, billed_hours, ceil_hour_cost

        rate = 0.085
        for seconds in [1.0, HOUR, HOUR + 1e-9, 3.7 * HOUR, 0.0]:
            assert ceil_hour_cost(seconds, rate) == billed_hours(seconds) * rate
            if seconds > 0:
                assert billed_hours(seconds) == math.ceil(seconds / HOUR)


def assert_dag_reports_equal(a, b):
    """Bit-equality of two DagReports, stage by stage."""
    assert a.subdeadlines == b.subdeadlines
    assert (a.started_at, a.finished_at) == (b.started_at, b.finished_at)
    assert a.compute_cost_usd == b.compute_cost_usd
    assert a.transfer_cost == b.transfer_cost
    assert sorted(a.stages) == sorted(b.stages)
    for name, sa in a.stages.items():
        sb = b.stages[name]
        assert (sa.ready_at, sa.work_start, sa.stage_end,
                sa.available_at) == \
               (sb.ready_at, sb.work_start, sb.stage_end, sb.available_at)
        assert_reports_equal(sa.report, sb.report)


class TestDagBrokerDifferential:
    """DAG stage policies built from frozen acquisitions vs the broker path.

    Every stage of the graph gets an explicit StagePolicy wired from the
    frozen pre-broker policy classes; the scheduler run must be
    bit-identical to the plain ``policy="fleet"`` / ``policy="leased"``
    run whose stages go through BrokerAcquisition.
    """

    DEADLINE = 6 * 3600.0
    SCALE = 2e-4

    def _catalogue(self, seed):
        from repro.corpus import html_18mil_like
        return html_18mil_like(scale=self.SCALE, seed=seed)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("shape", ["linear", "fanout"])
    def test_fleet_policy(self, seed, shape):
        from repro.dag import S3Backend
        from repro.dag.scheduler import DagScheduler
        from repro.experiments.exp_dag import _graph
        from repro.runner.core import StagePolicy

        ga, gb = _graph(shape), _graph(shape)
        ca, cb = Cloud(seed=seed), Cloud(seed=seed)
        new = DagScheduler(ca, ga, self._catalogue(seed), self.DEADLINE,
                           backend=S3Backend(), policy="fleet").run()
        overrides = {
            s.name: StagePolicy(
                acquisition=ReferenceFleetLaunchAcquisition(),
                progress=RunToCompletion(),
                completion=StaticCompletion(),
                terminate_at_stage_end=True)
            for s in gb.stages()}
        ref = DagScheduler(cb, gb, self._catalogue(seed), self.DEADLINE,
                           backend=S3Backend(), policy="fleet",
                           stage_policies=overrides).run()
        assert_dag_reports_equal(new, ref)
        assert_ledgers_equal(ca, cb)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_leased_policy(self, seed):
        from repro.dag import S3Backend
        from repro.dag.scheduler import DagScheduler
        from repro.experiments.exp_dag import _graph
        from repro.runner.core import StagePolicy

        ga, gb = _graph("fanout"), _graph("fanout")
        ca, cb = Cloud(seed=seed), Cloud(seed=seed)
        ma, mb = LeaseManager(ca, tag="dag"), LeaseManager(cb, tag="dag")
        new = DagScheduler(ca, ga, self._catalogue(seed), self.DEADLINE,
                           backend=S3Backend(), policy="leased",
                           lease_manager=ma).run()
        overrides = {
            s.name: StagePolicy(
                acquisition=ReferenceLeaseAcquisition(
                    mb, tenant=s.name, campaign=f"stage:{s.name}"),
                progress=RunToCompletion(),
                completion=LeaseCompletion(mb),
                terminate_at_stage_end=False)
            for s in gb.stages()}
        ref = DagScheduler(cb, gb, self._catalogue(seed), self.DEADLINE,
                           backend=S3Backend(), policy="leased",
                           lease_manager=mb, stage_policies=overrides).run()
        assert_dag_reports_equal(new, ref)
        assert ma.stats() == mb.stats()
        ma.shutdown()
        mb.shutdown()
        assert_ledgers_equal(ca, cb)


class TestLadderBrokerEquivalence:
    """LadderBroker([spot, on-demand]) ≡ execute_plan_spot bit-for-bit.

    When the spot rung never refuses outright (no launch chaos), the
    on-demand rung of the ladder is dead code — so chaining it must
    change nothing: same report, same bill, same clock.
    """

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("regime", [None, "eviction-storm"])
    def test_single_stage_billing(self, seed, regime):
        wl, plan = _campaign(seed)
        ca, cb = spot_cloud(seed, regime), spot_cloud(seed, regime)

        new = execute_plan_spot(ca, wl, plan)

        board = SpotMarketBoard.for_cloud(cb)
        ladder = SpotLadder(board, policy=SpotFallbackPolicy(),
                            chaos=cb.chaos)
        stats = SpotRunStats()
        broker = LadderBroker([SpotBroker(board, ladder, stats=stats),
                               OnDemandBroker()])
        acq = BrokerAcquisition(broker, replacement_tenant="spot")
        core = ExecutionCore(
            cb, wl, plan,
            acquisition=acq,
            progress=SpotProgress(board, ladder, acquisition=acq,
                                  chaos=cb.chaos, stats=stats),
            completion=SpotCompletion(stats=stats),
            label="execute_plan_spot",
            record_kind="spot")
        result = core.run()

        assert_reports_equal(new.report, result.report)
        assert new.stats.summary() == stats.summary()
        assert_ledgers_equal(ca, cb)
