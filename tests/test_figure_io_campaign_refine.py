"""Tests for figure JSON round-trips and campaign-integrated refinement."""


from repro.apps import GrepApplication, GrepCostProfile
from repro.cloud import Cloud, Workload
from repro.core import Campaign
from repro.corpus import text_400k_like
from repro.report import FigureResult
from repro.units import KB, MB


class TestFigureSerialisation:
    def make(self):
        fig = FigureResult("FigZ", "round trip")
        fig.add("s1", [1, 2, 3], [1.0, 2.0, 3.0], yerr=[0.1, 0.2, 0.3])
        fig.add("s2", ["a", "b"], [5.0, 6.0])
        fig.note("hello")
        return fig

    def test_roundtrip(self, tmp_path):
        fig = self.make()
        path = tmp_path / "fig.json"
        fig.save(path)
        loaded = FigureResult.load(path)
        assert loaded.fig_id == fig.fig_id and loaded.title == fig.title
        assert loaded.notes == fig.notes
        assert len(loaded.series) == 2
        assert loaded.series[0].y == fig.series[0].y
        assert loaded.series[0].yerr == fig.series[0].yerr
        assert loaded.series[1].yerr is None

    def test_to_dict_shape(self):
        d = self.make().to_dict()
        assert set(d) == {"fig_id", "title", "series", "notes"}
        assert d["series"][0]["label"] == "s1"


class TestCampaignRefinement:
    def test_refined_campaign_still_consistent(self):
        cloud = Cloud(seed=201)
        wl = Workload("grep", GrepApplication(), GrepCostProfile())
        cat = text_400k_like(scale=0.05)
        campaign = Campaign(cloud, wl, cat, use_ebs=True, probe_repeats=2)
        result = campaign.run(
            deadline=60.0,
            initial_volume=2 * MB,
            unit_sizes_for=lambda v: [200 * KB, 2 * MB, 10 * MB],
            refine_rounds=2,
        )
        assert isinstance(result.preferred.label, int)
        # volume conservation still holds through any refined unit size
        assert result.reshape_plan.total_size == cat.total_size
        assert result.plan.total_volume == cat.total_size
        # grep probes at these tiny volumes are setup-noise dominated
        # (the Fig. 3 lesson), so only the slope's sign is dependable
        assert result.model.b > 0

    def test_refinement_never_picks_worse(self):
        """With refinement on, the selected mean can only improve."""
        def run(refine_rounds):
            cloud = Cloud(seed=202)
            wl = Workload("grep", GrepApplication(), GrepCostProfile())
            cat = text_400k_like(scale=0.05)
            campaign = Campaign(cloud, wl, cat, use_ebs=True, probe_repeats=2)
            return campaign.run(
                deadline=60.0, initial_volume=2 * MB,
                unit_sizes_for=lambda v: [200 * KB, 2 * MB, 10 * MB],
                refine_rounds=refine_rounds,
            )

        base = run(0)
        refined = run(3)
        assert refined.preferred.mean_time <= base.preferred.mean_time + 1e-9
