"""Tests for adaptive unit-size refinement."""

import pytest

from repro.apps import GrepApplication, GrepCostProfile
from repro.cloud import Cloud, ExecutionService, Workload
from repro.corpus import html_18mil_like
from repro.perfmodel import ProbeCampaign, refine_unit_size
from repro.units import KB, MB


def make_campaign(seed=71, repeats=2):
    cloud = Cloud(seed=seed)
    inst = cloud.launch_instance()
    inst.cpu_factor = inst.io_factor = 1.0
    svc = ExecutionService(cloud)
    wl = Workload("grep", GrepApplication(), GrepCostProfile())
    return ProbeCampaign(svc, inst, wl, repeats=repeats)


@pytest.fixture(scope="module")
def refined():
    campaign = make_campaign()
    cat = html_18mil_like(scale=6e-4)   # ~500 MB catalogue, 20 MB probe
    volume = 20 * MB
    coarse = [200 * KB, 2 * MB, 20 * MB]
    return refine_unit_size(campaign, cat, volume, coarse, rounds=3)


class TestRefineUnitSize:
    def test_coarse_points_all_measured(self, refined):
        for s in (200 * KB, 2 * MB, 20 * MB):
            assert s in refined.measurements

    def test_refinement_adds_midpoints(self, refined):
        assert len(refined.measurements) > 3
        assert refined.rounds >= 1

    def test_best_is_minimum_of_sampled(self, refined):
        best = min(refined.measurements.values(), key=lambda m: m.mean)
        assert refined.best_mean == best.mean

    def test_midpoints_are_geometric(self, refined):
        """Every non-coarse sample lies strictly between two neighbours."""
        sampled = refined.sampled_units
        coarse = {200 * KB, 2 * MB, 20 * MB}
        for s in sampled:
            if s not in coarse:
                assert sampled[0] < s < sampled[-1]

    def test_larger_units_win_for_grep(self, refined):
        """Per-file overhead means the best unit is well above the smallest."""
        assert refined.best_unit >= 2 * MB

    def test_validation(self):
        campaign = make_campaign(seed=72)
        cat = html_18mil_like(scale=1e-4)
        with pytest.raises(ValueError):
            refine_unit_size(campaign, cat, 0, [1 * MB, 2 * MB])
        with pytest.raises(ValueError):
            refine_unit_size(campaign, cat, 10 * MB, [1 * MB])
        with pytest.raises(ValueError):
            refine_unit_size(campaign, cat, 10 * MB, [1 * MB, 2 * MB],
                             min_gap_ratio=1.0)

    def test_stops_when_bracket_tight(self):
        campaign = make_campaign(seed=73)
        cat = html_18mil_like(scale=6e-4)
        out = refine_unit_size(campaign, cat, 20 * MB,
                               [18 * MB, 19 * MB, 20 * MB],
                               rounds=5, min_gap_ratio=1.2)
        # neighbours within 20% of each other: nothing to refine
        assert out.rounds == 0
