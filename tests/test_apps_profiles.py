"""Tests for cost profiles — the simulator's ground truth."""

import pytest

from repro.apps import GrepCostProfile, PosCostProfile, TimeBreakdown, UnitMeta, as_unit_meta
from repro.corpus import agnes_grey_like, dubliners_like
from repro.sim.random import RngStream
from repro.units import GB, KB, MB
from repro.vfs import TextStats


def unit(size: int, **stats) -> UnitMeta:
    return UnitMeta(size=size, stats=TextStats(**stats))


class TestTimeBreakdown:
    def test_total(self):
        assert TimeBreakdown(1.0, 2.0, 3.0).total == 6.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown(-1.0, 0.0, 0.0)


class TestGrepProfile:
    def test_streaming_rate_matches_eq1_slope(self):
        """Paper Eq. (1): slope 1.324e-8 s/B → ~75.5 MB/s streaming."""
        p = GrepCostProfile()
        one_file_1gb = [unit(1 * GB)]
        t = p.breakdown(one_file_1gb).total
        per_byte = (t - p.per_file_overhead) / GB
        assert per_byte == pytest.approx(1.324e-8, rel=0.05)

    def test_small_files_dominated_by_overhead(self):
        p = GrepCostProfile()
        total = 100 * MB
        small = [unit(10 * KB) for _ in range(total // (10 * KB))]
        big = [unit(total)]
        t_small = p.breakdown(small).total
        t_big = p.breakdown(big).total
        # reshaping wins by a large factor (paper: 5.6x at 100 GB scale)
        assert t_small / t_big > 3.0

    def test_plateau_beyond_10mb_units(self):
        """Fig. 4: from 10 MB units the time is flat to within a few %."""
        p = GrepCostProfile()
        total = 5 * GB
        times = {}
        for unit_size in (10 * MB, 100 * MB, 1000 * MB):
            n = total // unit_size
            times[unit_size] = p.breakdown([unit(unit_size)] * n).total
        tmin, tmax = min(times.values()), max(times.values())
        assert (tmax - tmin) / tmin < 0.04

    def test_setup_draw_positive_and_noisy(self):
        p = GrepCostProfile()
        draws = [p.draw_setup(RngStream(i)) for i in range(200)]
        assert all(d > 0 for d in draws)
        import numpy as np

        assert np.std(draws) / np.mean(draws) > 0.5  # Fig. 3 instability

    def test_match_cost_counted(self):
        p = GrepCostProfile()
        base = p.breakdown([unit(MB)]).total
        with_hits = p.breakdown([unit(MB)], matches=10_000).total
        assert with_hits > base


class TestPosProfile:
    def test_per_byte_cost_near_eq3_slope(self):
        """Paper Eq. (3): 0.865e-4 s/B on the probe mix (complex head)."""
        p = PosCostProfile()
        u = unit(1 * KB, avg_word_len=7.1, avg_sentence_words=20.5)
        t = p.breakdown([u] * 1000).total
        per_byte = t / (1000 * KB)
        assert per_byte == pytest.approx(0.865e-4, rel=0.15)

    def test_memory_penalty_monotone(self):
        p = PosCostProfile()
        assert p.memory_penalty(500) == 1.0
        assert p.memory_penalty(10 * KB) > p.memory_penalty(1 * KB)
        assert p.memory_penalty(100 * MB) == p.mem_penalty_cap

    def test_large_files_degrade_pronouncedly(self):
        """Fig. 7: 1 MB unit files vs 1 kB files — pronounced degradation."""
        p = PosCostProfile()
        total = 10 * MB
        small = p.breakdown([unit(1 * KB, avg_sentence_words=17.0)] * (total // KB)).total
        big = p.breakdown([unit(1 * MB, avg_sentence_words=17.0)] * 10).total
        assert big / small > 1.3

    def test_original_segmentation_beats_merged(self):
        """Fig. 7: the original tiny files fare best (penalty-free, and the
        per-file overhead is negligible for a wrapped tagger)."""
        p = PosCostProfile()
        total = 1000 * KB
        orig = p.breakdown([unit(458, avg_sentence_words=17.0)] * (total // 458)).total
        merged_1kb = p.breakdown([unit(1 * KB, avg_sentence_words=17.0)] * (total // KB)).total
        assert orig <= merged_1kb

    def test_complexity_doubles_cost_at_equal_size(self):
        """§5.2 novels: Dubliners ≈2× Agnes Grey at ≈equal word count."""
        p = PosCostProfile()
        dub = as_unit_meta(dubliners_like().virtual_file())
        agnes = as_unit_meta(agnes_grey_like().virtual_file())
        t_dub = p.breakdown([dub]).cpu
        t_agnes = p.breakdown([agnes]).cpu
        assert 1.4 < t_dub / t_agnes < 2.4

    def test_jvm_startup_near_eq4_intercept(self):
        p = PosCostProfile()
        import numpy as np

        draws = [p.draw_setup(RngStream(i)) for i in range(300)]
        assert np.median(draws) == pytest.approx(3.0, rel=0.15)

    def test_cpu_dominates_io(self):
        p = PosCostProfile()
        b = p.breakdown([unit(100 * KB)])
        assert b.cpu > 10 * b.io
