"""Tests for the fault injector and the resilience policy layer."""

import pytest

from repro.chaos import (
    AzOutage,
    ChaosError,
    Degradation,
    FaultInjector,
    FaultScenario,
    LaunchRejected,
    SCENARIOS,
    get_scenario,
)
from repro.cloud import Cloud, FailureModel
from repro.cloud.instance import InstanceState
from repro.cloud.spot import SpotMarket
from repro.fleet import LeaseManager
from repro.resilience import (
    BreakerState,
    CapacityError,
    CircuitBreaker,
    DegradationPlanner,
    ResilientLauncher,
    RetryPolicy,
    hedged_transfer_time,
)
from repro.sim.random import RngStream
from repro.units import HOUR


class TestScenarios:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultScenario(name="")
        with pytest.raises(ValueError):
            FaultScenario(name="x", launch_reject_rates=(("*", 1.5),))
        with pytest.raises(ValueError):
            FaultScenario(name="x", boot_hang_prob=-0.1)
        with pytest.raises(ValueError):
            AzOutage("z", 10.0, 5.0)
        with pytest.raises(ValueError):
            Degradation(0.0, 10.0, factor=0.5)

    def test_reject_rate_composes_selectors_as_independent_events(self):
        s = FaultScenario(name="x", launch_reject_rates=(
            ("*", 0.5), ("us-east-1a", 0.5)))
        assert s.reject_rate("us-east-1a") == pytest.approx(0.75)
        assert s.reject_rate("us-east-1b") == pytest.approx(0.5)

    def test_get_scenario_unknown_raises_with_menu(self):
        with pytest.raises(KeyError, match="shipped:"):
            get_scenario("nope")

    def test_shipped_library_covers_every_fault_class(self):
        assert any(s.launch_reject_rates for s in SCENARIOS.values())
        assert any(s.boot_hang_prob for s in SCENARIOS.values())
        assert any(s.az_outages for s in SCENARIOS.values())
        assert any(s.ebs_degradations for s in SCENARIOS.values())
        assert any(s.s3_degradations for s in SCENARIOS.values())


class TestInjectorDeterminism:
    def _decisions(self, seed, n=200):
        inj = FaultInjector([get_scenario("capacity-crunch"),
                             get_scenario("flaky-boots")], seed=seed)
        return [inj.launch_decision("us-east-1a", 0.0, i).kind
                for i in range(n)]

    def test_same_seed_same_decisions(self):
        assert self._decisions(5) == self._decisions(5)

    def test_different_seed_different_decisions(self):
        assert self._decisions(5) != self._decisions(6)

    def test_composed_rates_are_roughly_honoured(self):
        kinds = self._decisions(3, n=500)
        rejects = kinds.count("reject") / 500
        # capacity-crunch rejects at 0.45; flaky-boots hangs 0.30 of grants
        assert 0.35 < rejects < 0.55
        hangs = kinds.count("hang") / max(1, 500 - kinds.count("reject"))
        assert 0.2 < hangs < 0.4

    def test_degradation_factors_compose_multiplicatively(self):
        s1 = FaultScenario(name="a", ebs_degradations=(
            Degradation(0.0, 100.0, factor=2.0),))
        s2 = FaultScenario(name="b", ebs_degradations=(
            Degradation(0.0, 100.0, factor=3.0),))
        inj = FaultInjector([s1, s2], seed=0)
        assert inj.ebs_factor(50.0, "us-east-1a") == pytest.approx(6.0)
        assert inj.ebs_factor(150.0, "us-east-1a") == pytest.approx(1.0)

    def test_outage_window_and_zone_down(self):
        inj = FaultInjector([get_scenario("az-blackout")], seed=0)
        assert inj.zone_down("us-east-1a", 0.0)
        assert inj.zone_down("us-east-1a", HOUR)
        assert not inj.zone_down("us-east-1a", 2 * HOUR)
        assert not inj.zone_down("us-east-1b", HOUR)


class TestChaosCloudIntegration:
    def test_rejected_launch_raises_and_is_logged(self):
        inj = FaultInjector([get_scenario("az-blackout")], seed=1)
        cloud = Cloud(seed=1, chaos=inj)
        with pytest.raises(LaunchRejected):
            cloud.launch_instance()
        assert inj.fault_counts().get("az-outage") == 1

    def test_granted_instances_identical_with_and_without_chaos(self):
        # Installing an injector must not perturb the hidden state of
        # instances the cloud does grant (RNG stream isolation).
        def factors(chaos):
            cloud = Cloud(seed=9, chaos=chaos)
            inst = cloud.launch_instance()
            return (inst.cpu_factor, inst.io_factor, inst.boot_delay)

        # flaky-boots grants this launch without a hang under seed 9
        inj = FaultInjector([FaultScenario(name="calm")], seed=9)
        assert factors(None) == factors(inj)

    def test_az_outage_kills_running_instances_on_advance(self):
        scenario = FaultScenario(name="later-outage", az_outages=(
            AzOutage("us-east-1a", 600.0, 1200.0),))
        cloud = Cloud(seed=2, chaos=FaultInjector([scenario], seed=2))
        inst = cloud.launch_instance()
        cloud.advance(900.0)
        assert inst.state is InstanceState.FAILED
        assert cloud.ledger.total_instance_hours >= 1

    def test_ebs_degradation_slows_service_io(self):
        from repro.apps import GrepApplication, GrepCostProfile
        from repro.cloud import ExecutionService, Workload
        from repro.core import reshape
        from repro.corpus import text_400k_like
        from repro.units import KB

        wl = Workload("grep", GrepApplication(), GrepCostProfile())
        units = list(reshape(text_400k_like(scale=2e-3), 100 * KB).units)

        def duration(chaos):
            cloud = Cloud(seed=4, chaos=chaos)
            inst = cloud.launch_instance()
            return ExecutionService(cloud).run(inst, units, wl,
                                               advance_clock=False)

        slow = FaultInjector([get_scenario("slow-ebs")], seed=4)
        assert duration(slow) > 1.5 * duration(None)


class TestSeedDeterminismUnderChaos:
    """Satellite: failures.py / spot.py draws vs scenario composition."""

    def test_failure_draws_unchanged_by_chaos_installation(self):
        def crash_times(chaos):
            cloud = Cloud(seed=6, chaos=chaos,
                          failure_model=FailureModel(mtbf_hours=1.0))
            return [cloud.launch_instance().time_to_failure for _ in range(5)]

        inj = FaultInjector([FaultScenario(name="calm"),
                             get_scenario("slow-ebs")], seed=6)
        assert crash_times(None) == crash_times(inj)

    def test_failure_draws_repeat_under_composed_scenarios(self):
        def run(seed):
            inj = FaultInjector([get_scenario("kitchen-sink")], seed=seed)
            cloud = Cloud(seed=seed, chaos=inj,
                          failure_model=FailureModel(mtbf_hours=0.5))
            out = []
            for _ in range(12):
                try:
                    out.append(round(cloud.launch_instance().time_to_failure, 6))
                except ChaosError as e:
                    out.append(type(e).__name__)
            return out

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_spot_prices_independent_of_chaos(self):
        # Spot draws come from their own named stream; a chaos injector
        # seeded from the same campaign seed must not perturb them.
        p1 = SpotMarket(rng=RngStream(3, "spot")).prices(24)
        FaultInjector([get_scenario("kitchen-sink")], seed=3)  # same seed
        inj = FaultInjector([get_scenario("capacity-crunch")], seed=3)
        for i in range(50):
            inj.launch_decision("us-east-1a", 0.0, i)
        p2 = SpotMarket(rng=RngStream(3, "spot")).prices(24)
        assert p1 == p2


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter="chaotic")
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_delays_deterministic_and_budget_capped(self):
        pol = RetryPolicy(max_attempts=10, budget_seconds=50.0)
        d1 = list(pol.delays(RngStream(1, "t")))
        d2 = list(pol.delays(RngStream(1, "t")))
        assert d1 == d2
        assert sum(d1) <= 50.0 + 1e-9
        assert len(d1) <= 9

    def test_no_jitter_is_pure_exponential(self):
        pol = RetryPolicy(jitter="none", base_delay=1.0, multiplier=2.0,
                          max_delay=8.0, max_attempts=6,
                          budget_seconds=1e9)
        assert list(pol.delays(RngStream(0))) == [1.0, 2.0, 4.0, 8.0, 8.0]

    def test_hedged_transfer_calm_weather_costs_nothing_extra(self):
        cloud = Cloud(seed=5)
        rng = RngStream(5, "h")
        plain = [cloud.s3.transfer_time(10_000,
                                        rng.fork(str(i)).fork("hedge.0"))
                 for i in range(200)]
        hedged = [hedged_transfer_time(cloud.s3, 10_000, rng.fork(str(i)))
                  for i in range(200)]
        # deferred hedge: the backup only fires past nominal p95, so each
        # draw is capped but never inflated relative to the unhedged draw
        assert all(h <= p + 1e-12 for h, p in zip(hedged, plain))
        assert sum(hedged) <= sum(plain)

    def test_hedged_transfer_beats_brownout_tail(self):
        inj = FaultInjector([get_scenario("s3-brownout")], seed=5)
        cloud = Cloud(seed=5, chaos=inj)
        rng = RngStream(5, "h")
        plain = sum(cloud.s3.transfer_time(10_000,
                                           rng.fork(str(i)).fork("hedge.0"))
                    for i in range(300))
        hedged = sum(hedged_transfer_time(cloud.s3, 10_000, rng.fork(str(i)))
                     for i in range(300))
        assert hedged < 0.8 * plain


class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers(self):
        b = CircuitBreaker("z", failure_threshold=3, cooldown=100.0)
        for t in (1.0, 2.0):
            b.record_failure(t)
            assert b.allows(t)
        b.record_failure(3.0)
        assert b.state is BreakerState.OPEN
        assert not b.allows(50.0)
        assert b.allows(103.0)                  # cooldown elapsed
        assert b.state is BreakerState.HALF_OPEN
        b.record_success(104.0)
        assert b.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        b = CircuitBreaker("z", failure_threshold=1, cooldown=10.0)
        b.record_failure(0.0)
        assert b.allows(11.0)
        b.record_failure(12.0)
        assert b.state is BreakerState.OPEN
        assert not b.allows(13.0)

    def test_transitions_are_recorded(self):
        b = CircuitBreaker("z", failure_threshold=1, cooldown=10.0)
        b.record_failure(5.0)
        assert b.transitions == [(5.0, BreakerState.OPEN)]


class TestResilientLauncher:
    def test_steers_around_dead_zone(self):
        inj = FaultInjector([get_scenario("az-blackout")], seed=3)
        cloud = Cloud(seed=3, chaos=inj)
        launcher = ResilientLauncher(cloud)
        acq = launcher.launch()
        assert acq.zone != "us-east-1a"
        assert acq.attempts > 1
        assert any("az-outage" in f for f in acq.faults)
        # the dead zone's breaker opened, so the next launch goes
        # elsewhere on the first try
        acq2 = launcher.launch()
        assert acq2.zone != "us-east-1a"

    def test_hedges_hung_boots(self):
        scenario = FaultScenario(name="hangs", boot_hang_prob=0.95,
                                 boot_hang_seconds=2 * HOUR)
        cloud = Cloud(seed=3, chaos=FaultInjector([scenario], seed=3))
        launcher = ResilientLauncher(
            cloud, max_hedges=50,
            retry=RetryPolicy(max_attempts=60, budget_seconds=1e9))
        acq = launcher.launch()
        assert acq.hedges >= 1
        assert acq.instance.boot_delay <= launcher.boot_timeout
        assert acq.wait_seconds >= launcher.boot_timeout

    def test_exhaustion_raises_capacity_error(self):
        scenario = FaultScenario(name="wall",
                                 launch_reject_rates=(("*", 0.999),))
        cloud = Cloud(seed=1, chaos=FaultInjector([scenario], seed=1))
        launcher = ResilientLauncher(
            cloud, retry=RetryPolicy(max_attempts=3, budget_seconds=30.0))
        with pytest.raises(CapacityError):
            launcher.launch()
        assert launcher.stats()["absorbed_faults"] >= 3

    def test_deterministic_under_seed(self):
        def run():
            inj = FaultInjector([get_scenario("capacity-crunch")], seed=4)
            cloud = Cloud(seed=4, chaos=inj)
            launcher = ResilientLauncher(cloud)
            acq = launcher.launch()
            return (acq.zone, acq.attempts, round(acq.wait_seconds, 6),
                    acq.faults)

        assert run() == run()


class TestDegradationPlanner:
    def _units(self, sizes):
        from repro.apps.base import UnitMeta
        from repro.vfs.files import TextStats

        return [UnitMeta(size=s, stats=TextStats()) for s in sizes]

    def test_orphans_go_to_least_loaded_bins(self):
        planner = DegradationPlanner()
        survivors = [self._units([100]), self._units([500])]
        orphans = self._units([300, 200])
        res = planner.replan(survivors, orphans)
        assert res.moved_units == 2
        assert res.moved_volume == 500
        merged_volumes = [sum(u.size for u in b) for b in res.assignments]
        assert max(merged_volumes) - min(merged_volumes) <= 300

    def test_no_survivors_raises(self):
        with pytest.raises(ValueError):
            DegradationPlanner().replan([], self._units([1]))

    def test_advisory_deadline_uses_predictor(self):
        class Model:
            def predict(self, v):
                return v / 10.0

        planner = DegradationPlanner(Model())
        res = planner.replan([self._units([1000])], self._units([500]))
        assert res.advisory_deadline is not None
        assert res.advisory_deadline >= 150.0  # predict(1500)=150, a >= 0
        assert planner.replans == [res]


class TestLeaseFaultSurfacing:
    def test_release_of_failed_instance_sets_outcome_and_skips_pool(self):
        cloud = Cloud(seed=2)
        mgr = LeaseManager(cloud)
        lease = mgr.acquire("t", est_seconds=100.0, at=0.0)
        cloud.advance(lease.ready_at + 50.0 - cloud.now)
        cloud.fail_instance(lease.instance)
        mgr.release(lease, cloud.now)
        assert lease.outcome == "instance-failed"
        assert len(mgr.pool) == 0

    def test_evict_dead_zones_drops_outage_zone_instances(self):
        scenario = FaultScenario(name="later-outage", az_outages=(
            AzOutage("us-east-1a", 600.0, 7200.0),))
        cloud = Cloud(seed=2, chaos=FaultInjector([scenario], seed=2))
        mgr = LeaseManager(cloud)
        lease = mgr.acquire("t", est_seconds=100.0, at=0.0)
        cloud.engine.run(until=500.0)
        mgr.release(lease, 500.0)
        assert len(mgr.pool) == 1
        assert mgr.evict_dead_zones(700.0) == 1
        assert len(mgr.pool) == 0
        assert mgr.pool_evicted == 1
        assert lease.instance.state is InstanceState.FAILED

    def test_cold_boot_fault_falls_back_to_pooled_extension(self):
        cloud = Cloud(seed=2)
        mgr = LeaseManager(cloud, max_instances=2)
        l1 = mgr.acquire("t", est_seconds=50.0, at=0.0)
        cloud.advance(l1.ready_at + 10.0 - cloud.now)
        mgr.release(l1, cloud.now)
        # every further cold boot is refused
        cloud.chaos = FaultInjector(
            [FaultScenario(name="wall", launch_reject_rates=(("*", 0.999),))],
            seed=2)
        l2 = mgr.acquire("t", est_seconds=9 * HOUR, at=cloud.now)
        assert l2.outcome == "launch-fault-absorbed"
        assert l2.extension
        assert mgr.launch_faults == 1
        assert mgr.stats()["launch_faults"] == 1


class TestRunnersUnderChaos:
    def _plan(self):
        import numpy as np

        from repro.core import StaticProvisioner, reshape
        from repro.corpus import text_400k_like
        from repro.perfmodel.regression import fit_affine

        x = np.array([1e5, 1e6, 5e6])
        model = fit_affine(x, 0.327 + 0.865e-4 * x)
        units = list(reshape(text_400k_like(scale=2e-3), None).units)
        # deadline tight enough to spread the work over several bins, so
        # degradation replans have survivors to re-home orphans onto
        return StaticProvisioner(model).plan(units, 30.0, strategy="uniform")

    def _workload(self):
        from repro.apps import PosCostProfile, PosTaggerApplication
        from repro.cloud import Workload

        return Workload("postag", PosTaggerApplication(), PosCostProfile())

    def test_execute_plan_reports_failed_bins_without_launcher(self):
        from repro.runner import execute_plan

        inj = FaultInjector([get_scenario("az-blackout")], seed=5)
        cloud = Cloud(seed=5, chaos=inj)
        report = execute_plan(cloud, self._workload(), self._plan())
        assert report.runs == []
        assert report.n_failed == len(report.failures) > 0
        assert not report.met_deadline

    def test_execute_plan_with_launcher_absorbs_faults(self):
        from repro.runner import execute_plan

        inj = FaultInjector([get_scenario("az-blackout")], seed=5)
        cloud = Cloud(seed=5, chaos=inj)
        launcher = ResilientLauncher(cloud)
        report = execute_plan(cloud, self._workload(), self._plan(),
                              launcher=launcher)
        assert report.n_failed == 0
        assert len(report.runs) > 0
        assert launcher.stats()["absorbed_faults"] >= 1

    def test_degradation_replan_absorbs_orphaned_bins(self):
        from repro.runner import execute_plan

        # roughly half of all launches refused, no retries left to absorb;
        # seed 7 deterministically yields a partial failure (some bins
        # granted, some refused) so the replan has survivors to use
        scenario = FaultScenario(name="half",
                                 launch_reject_rates=(("*", 0.6),))
        inj = FaultInjector([scenario], seed=7)
        cloud = Cloud(seed=7, chaos=inj)
        launcher = ResilientLauncher(
            cloud, retry=RetryPolicy(max_attempts=1),
            degradation=DegradationPlanner())
        plan = self._plan()
        report = execute_plan(cloud, self._workload(), plan,
                              launcher=launcher)
        assert report.failures and report.runs
        assert all(f.absorbed for f in report.failures)
        assert report.n_failed == 0
        # absorbed work really runs: total volume is conserved
        plan_volume = sum(u.size for b in plan.assignments for u in b)
        assert sum(r.volume for r in report.runs) == plan_volume

    def test_dynamic_runner_keeps_straggler_when_no_replacement(self):
        from repro.runner import DynamicPolicy, execute_with_monitoring

        scenario = FaultScenario(name="wall-after",
                                 launch_reject_rates=(("*", 0.999),))
        cloud = Cloud(seed=5)
        report_clean, _ = execute_with_monitoring(
            cloud, self._workload(), self._plan(),
            policy=DynamicPolicy(slow_threshold=0.99,
                                 replacement_penalty=30.0))
        # same run, but every replacement launch is refused
        cloud2 = Cloud(seed=5, chaos=FaultInjector([scenario], seed=5))
        # initial launches must survive: disable chaos during fleet boot
        cloud2.chaos = None
        from repro.resilience.launch import launch_fleet  # noqa: F401

        report, events = execute_with_monitoring(
            cloud2, self._workload(), self._plan(),
            policy=DynamicPolicy(slow_threshold=0.99,
                                 replacement_penalty=30.0))
        assert sum(r.volume for r in report.runs) == \
            sum(r.volume for r in report_clean.runs)
