"""Tests for per-instance miss probabilities and expected miss counts."""

import numpy as np
import pytest

from repro.core import ResidualAnalysis, expected_misses, miss_probability_of
from repro.perfmodel.regression import fit_affine


def noisy_model(rel=0.15, seed=1):
    rng = np.random.default_rng(seed)
    x = np.linspace(1e5, 1e7, 30)
    y = (0.3 + 0.9e-4 * x) * (1 + rng.normal(0, rel, x.size))
    return fit_affine(x, y)


class TestMissProbability:
    def test_half_at_predicted_equals_deadline(self):
        ra = ResidualAnalysis(mu=0.0, sigma=0.2, n=20)
        assert miss_probability_of(3600.0, 3600.0, ra) == pytest.approx(0.5)

    def test_monotone_in_predicted_time(self):
        ra = ResidualAnalysis(mu=0.0, sigma=0.2, n=20)
        ps = [miss_probability_of(t, 3600.0, ra) for t in (1800, 3000, 3600, 4200)]
        assert ps == sorted(ps)

    def test_bias_shifts_probability(self):
        optimistic = ResidualAnalysis(mu=0.2, sigma=0.1, n=20)  # underestimates
        unbiased = ResidualAnalysis(mu=0.0, sigma=0.1, n=20)
        assert (miss_probability_of(3400.0, 3600.0, optimistic)
                > miss_probability_of(3400.0, 3600.0, unbiased))

    def test_zero_predicted(self):
        ra = ResidualAnalysis(mu=0.0, sigma=0.2, n=20)
        assert miss_probability_of(0.0, 3600.0, ra) == 0.0

    def test_degenerate_sigma(self):
        ra = ResidualAnalysis(mu=0.0, sigma=0.0, n=20)
        assert miss_probability_of(3700.0, 3600.0, ra) == 1.0
        assert miss_probability_of(3500.0, 3600.0, ra) == 0.0


class TestExpectedMisses:
    def test_bounds(self):
        model = noisy_model()
        times = [3500.0] * 10
        em = expected_misses(times, 3600.0, model)
        assert 0.0 <= em <= 10.0

    def test_tighter_plans_expect_more_misses(self):
        model = noisy_model()
        full = [3590.0] * 10     # bins planned right at the deadline
        slack = [3000.0] * 10
        assert (expected_misses(full, 3600.0, model)
                > expected_misses(slack, 3600.0, model))

    def test_adjusted_deadline_hits_target_rate(self):
        """Planning against D/(1+a) should push each instance's miss odds
        to ≈ the 10% design point — the calibration the §5.2 machinery
        promises."""
        from repro.core import adjusted_deadline, adjustment_factor

        model = noisy_model(rel=0.12, seed=3)
        a = adjustment_factor(model, 0.10)
        d_adj = adjusted_deadline(3600.0, a)
        # an instance whose predicted time fills the adjusted deadline
        em = expected_misses([d_adj], 3600.0, model)
        assert em == pytest.approx(0.10, abs=0.03)
