"""Targeted tests for ``cloud/spot.py``: the §1.1 spot-market extension.

`tests/test_cloud_service.py` covers the happy paths; here the contract
edges are pinned: price caching is idempotent per seed, the price floor
actually clamps (not just "prices happen to stay above it"), a bid the
market never meets buys nothing — zero cost, zero progress, and an
honest ``done=False`` — and the per-AZ market board's fork discipline:
attaching a board (or querying new zones) never shifts any stream an
existing consumer observes.
"""

import pytest

from repro.chaos import SpotInterruptionTrace
from repro.cloud import Cloud
from repro.cloud.spot import (
    TWO_MINUTE_WARNING,
    SpotMarket,
    SpotMarketBoard,
    SpotRequest,
)
from repro.cloud.types import LARGE, SMALL
from repro.sim.random import RngStream
from repro.units import HOUR


class TestSeedDeterminism:
    def test_same_seed_same_trajectory(self):
        a = SpotMarket(rng=RngStream(31))
        b = SpotMarket(rng=RngStream(31))
        assert a.prices(100) == b.prices(100)

    def test_different_seeds_diverge(self):
        a = SpotMarket(rng=RngStream(31))
        b = SpotMarket(rng=RngStream(32))
        assert a.prices(100) != b.prices(100)

    def test_queries_are_idempotent(self):
        """Re-reading an hour must not consume RNG state (prices cached)."""
        m = SpotMarket(rng=RngStream(31))
        first = m.price(10)
        trajectory = m.prices(50)
        assert m.price(10) == first
        # interleaved / repeated queries leave the trajectory untouched
        assert m.prices(50) == trajectory

    def test_out_of_order_queries_match_in_order(self):
        a = SpotMarket(rng=RngStream(7))
        b = SpotMarket(rng=RngStream(7))
        backwards = [a.price(h) for h in (40, 5, 23, 0)]
        b.prices(41)
        assert backwards == [b.price(h) for h in (40, 5, 23, 0)]


class TestFloorClamping:
    def test_floor_clamps_downward_drift(self):
        """With the mean below the floor, reversion drags every price into
        the clamp — each hour must sit exactly at the floor, never below."""
        m = SpotMarket(rng=RngStream(5), mean_price=0.001, floor=0.05,
                       volatility=0.0, start_price=0.05)
        assert m.prices(20) == [0.05] * 20

    def test_floor_binds_under_volatility(self):
        m = SpotMarket(rng=RngStream(5), mean_price=0.012, floor=0.01,
                       volatility=0.02)
        prices = m.prices(300)
        assert all(p >= m.floor for p in prices)
        # shocks 2x the mean-to-floor gap must hit the clamp sometimes
        assert any(p == m.floor for p in prices)

    def test_unclamped_process_can_go_lower(self):
        """Same seed, floor removed: the raw process dips below 0.01 —
        proving the clamp in the sibling test is the floor, not luck."""
        m = SpotMarket(rng=RngStream(5), mean_price=0.012, floor=0.0,
                       volatility=0.02)
        assert min(m.prices(300)) < 0.01


class TestBidNeverMet:
    def test_never_active(self):
        m = SpotMarket(rng=RngStream(11))
        req = SpotRequest(bid=m.floor / 2)   # below the floor: unreachable
        assert req.active_hours(m, 500) == []

    def test_progress_is_zero_and_unfinished(self):
        m = SpotMarket(rng=RngStream(11))
        out = SpotRequest(bid=m.floor / 2).simulate_progress(
            m, horizon_hours=500, work_hours=3.0)
        assert out == {"completed_hour": None, "paid_hours": 0,
                       "cost": 0.0, "done": False}

    def test_zero_work_is_done_even_without_capacity(self):
        m = SpotMarket(rng=RngStream(11))
        out = SpotRequest(bid=m.floor / 2).simulate_progress(
            m, horizon_hours=10, work_hours=0.0)
        assert out["done"] and out["cost"] == 0.0

    def test_negative_work_rejected(self):
        m = SpotMarket(rng=RngStream(11))
        with pytest.raises(ValueError):
            SpotRequest(bid=1.0).simulate_progress(
                m, horizon_hours=10, work_hours=-1.0)

    def test_zero_work_completed_hour_is_zero(self):
        """Regression: zero work completes at hour 0, not ``None`` — even
        when the bid never holds, with nothing billed."""
        m = SpotMarket(rng=RngStream(11))
        out = SpotRequest(bid=m.floor / 2).simulate_progress(
            m, horizon_hours=10, work_hours=0.0)
        assert out == {"completed_hour": 0, "paid_hours": 0,
                       "cost": 0.0, "done": True}


class TestMarketBoard:
    def test_same_fork_same_board(self):
        a = SpotMarketBoard(RngStream(9, "cloud").fork("spot.board"),
                            ("za", "zb"))
        b = SpotMarketBoard(RngStream(9, "cloud").fork("spot.board"),
                            ("za", "zb"))
        assert [a.price("za", h) for h in range(48)] == \
            [b.price("za", h) for h in range(48)]

    def test_zones_are_independent_markets(self):
        board = SpotMarketBoard(RngStream(9), ("za", "zb"))
        assert board.market("za").prices(48) != board.market("zb").prices(48)

    def test_attaching_a_board_never_shifts_cloud_draws(self):
        """The board is a named fork: creating it (and pricing every
        zone) must leave the cloud's own streams byte-identical."""
        plain = Cloud(seed=77)
        witness = plain.rng.fork("witness").normal(0.0, 1.0)

        cloud = Cloud(seed=77)
        board = SpotMarketBoard.for_cloud(cloud)
        for z in cloud.region.zones:
            board.price(z.name, 0)
            board.price(z.name, 24, LARGE)
        assert cloud.rng.fork("witness").normal(0.0, 1.0) == witness

    def test_hour_zero_prices_disagree_across_zones(self):
        board = SpotMarketBoard.for_cloud(Cloud(seed=11))
        opening = {board.price(z, 0) for z in board.zones}
        assert len(opening) > 1

    def test_large_prices_scale_with_on_demand_ratio(self):
        board = SpotMarketBoard(RngStream(3), ("za",), volatility=0.0)
        ratio = LARGE.hourly_rate / SMALL.hourly_rate
        assert board.market("za", LARGE).mean_price == \
            pytest.approx(board.mean_price * ratio)
        assert board.price("za", 0, LARGE) == \
            pytest.approx(board.price("za", 0, SMALL) * ratio)
        # a reference-terms bid covers LARGE iff it covers SMALL's market
        assert board.affordable("za", 0, 0.06, LARGE) == \
            board.affordable("za", 0, 0.06, SMALL)

    def test_unknown_zone_rejected(self):
        board = SpotMarketBoard(RngStream(3), ("za",))
        with pytest.raises(KeyError):
            board.price("nope", 0)


class TestInterruptionCalculus:
    def test_unmeetable_bid_crosses_at_first_hour_boundary(self):
        board = SpotMarketBoard(RngStream(5), ("za",))
        hit = board.next_crossing("za", after=100.0, bid=board.floor / 2)
        assert hit is not None
        assert hit.at == HOUR
        assert hit.warning_at == HOUR - TWO_MINUTE_WARNING
        assert hit.source == "market"

    def test_generous_bid_never_crosses(self):
        board = SpotMarketBoard(RngStream(5), ("za",))
        assert board.next_crossing("za", after=0.0, bid=10.0,
                                   horizon_hours=48) is None

    def test_crossing_is_strictly_after(self):
        """An instance started exactly on a crossing boundary survives
        until the *next* crossing, not its own start instant."""
        board = SpotMarketBoard(RngStream(5), ("za",))
        hit = board.next_crossing("za", after=HOUR, bid=board.floor / 2)
        assert hit is not None and hit.at == 2 * HOUR


class TestSpotBilling:
    def _board(self):
        # volatility 0: every hour bills at exactly the mean price
        return SpotMarketBoard(RngStream(1), ("za",), volatility=0.0,
                               mean_price=0.04)

    def test_user_termination_charges_partial_hour(self):
        rows = self._board().bill_segment("za", 0.0, 1.5 * HOUR)
        assert [(s, e) for s, e, _ in rows] == \
            [(0.0, HOUR), (HOUR, 1.5 * HOUR)]
        assert all(p == pytest.approx(0.04) for _, _, p in rows)

    def test_market_reclaim_trailing_partial_is_free(self):
        rows = self._board().bill_segment("za", 0.0, 1.5 * HOUR,
                                          interrupted=True)
        assert [(s, e) for s, e, _ in rows] == [(0.0, HOUR)]

    def test_reclaim_on_exact_boundary_charges_every_hour(self):
        rows = self._board().bill_segment("za", 0.0, 2.0 * HOUR,
                                          interrupted=True)
        assert len(rows) == 2

    def test_empty_segment_bills_nothing(self):
        assert self._board().bill_segment("za", 50.0, 50.0) == []

    def test_backwards_segment_rejected(self):
        with pytest.raises(ValueError):
            self._board().bill_segment("za", HOUR, 0.0)


class TestInterruptionTrace:
    def _trace(self):
        return SpotInterruptionTrace.generate(
            "t", seed=13, zones=("za", "zb"), mean_gap_hours=0.5,
            horizon_hours=6.0)

    def test_generation_is_a_pure_function_of_its_inputs(self):
        a, b = self._trace(), self._trace()
        assert a == b
        assert list(a.events) == sorted(a.events)

    def test_zones_decorrelated(self):
        trace = self._trace()
        assert trace.events_for("za") != trace.events_for("zb")

    def test_next_after_is_strictly_after(self):
        trace = self._trace()
        first = trace.events_for("za")[0]
        assert trace.next_after("za", first) > first
        assert trace.next_after("za", 6.0 * HOUR) is None
