"""Targeted tests for ``cloud/spot.py``: the §1.1 spot-market extension.

`tests/test_cloud_service.py` covers the happy paths; here the contract
edges are pinned: price caching is idempotent per seed, the price floor
actually clamps (not just "prices happen to stay above it"), and a bid
the market never meets buys nothing — zero cost, zero progress, and an
honest ``done=False``.
"""

import pytest

from repro.cloud.spot import SpotMarket, SpotRequest
from repro.sim.random import RngStream


class TestSeedDeterminism:
    def test_same_seed_same_trajectory(self):
        a = SpotMarket(rng=RngStream(31))
        b = SpotMarket(rng=RngStream(31))
        assert a.prices(100) == b.prices(100)

    def test_different_seeds_diverge(self):
        a = SpotMarket(rng=RngStream(31))
        b = SpotMarket(rng=RngStream(32))
        assert a.prices(100) != b.prices(100)

    def test_queries_are_idempotent(self):
        """Re-reading an hour must not consume RNG state (prices cached)."""
        m = SpotMarket(rng=RngStream(31))
        first = m.price(10)
        trajectory = m.prices(50)
        assert m.price(10) == first
        # interleaved / repeated queries leave the trajectory untouched
        assert m.prices(50) == trajectory

    def test_out_of_order_queries_match_in_order(self):
        a = SpotMarket(rng=RngStream(7))
        b = SpotMarket(rng=RngStream(7))
        backwards = [a.price(h) for h in (40, 5, 23, 0)]
        b.prices(41)
        assert backwards == [b.price(h) for h in (40, 5, 23, 0)]


class TestFloorClamping:
    def test_floor_clamps_downward_drift(self):
        """With the mean below the floor, reversion drags every price into
        the clamp — each hour must sit exactly at the floor, never below."""
        m = SpotMarket(rng=RngStream(5), mean_price=0.001, floor=0.05,
                       volatility=0.0, start_price=0.05)
        assert m.prices(20) == [0.05] * 20

    def test_floor_binds_under_volatility(self):
        m = SpotMarket(rng=RngStream(5), mean_price=0.012, floor=0.01,
                       volatility=0.02)
        prices = m.prices(300)
        assert all(p >= m.floor for p in prices)
        # shocks 2x the mean-to-floor gap must hit the clamp sometimes
        assert any(p == m.floor for p in prices)

    def test_unclamped_process_can_go_lower(self):
        """Same seed, floor removed: the raw process dips below 0.01 —
        proving the clamp in the sibling test is the floor, not luck."""
        m = SpotMarket(rng=RngStream(5), mean_price=0.012, floor=0.0,
                       volatility=0.02)
        assert min(m.prices(300)) < 0.01


class TestBidNeverMet:
    def test_never_active(self):
        m = SpotMarket(rng=RngStream(11))
        req = SpotRequest(bid=m.floor / 2)   # below the floor: unreachable
        assert req.active_hours(m, 500) == []

    def test_progress_is_zero_and_unfinished(self):
        m = SpotMarket(rng=RngStream(11))
        out = SpotRequest(bid=m.floor / 2).simulate_progress(
            m, horizon_hours=500, work_hours=3.0)
        assert out == {"completed_hour": None, "paid_hours": 0,
                       "cost": 0.0, "done": False}

    def test_zero_work_is_done_even_without_capacity(self):
        m = SpotMarket(rng=RngStream(11))
        out = SpotRequest(bid=m.floor / 2).simulate_progress(
            m, horizon_hours=10, work_hours=0.0)
        assert out["done"] and out["cost"] == 0.0

    def test_negative_work_rejected(self):
        m = SpotMarket(rng=RngStream(11))
        with pytest.raises(ValueError):
            SpotRequest(bid=1.0).simulate_progress(
                m, horizon_hours=10, work_hours=-1.0)
