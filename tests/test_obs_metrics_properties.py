"""Property tests: metrics dump/merge algebra and JSON round-trip fidelity.

The sweep harness and the run ledger both rely on ``dump()`` being a
faithful, mergeable snapshot: workers can fold in any grouping (merge is
associative), counters and histograms can fold in any order (commutative),
gauges resolve by last write, and a dump that crosses a JSON boundary
(ledger line, ``--metrics-out`` file) decodes back bit-identical.

Values are drawn as dyadic rationals (``k / 1024``) so float addition is
exact and the algebraic laws hold to the last bit — any failure is a real
merge bug, never accumulated rounding.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.ledger import decode_metrics_dump, encode_metrics_dump
from repro.obs.metrics import MetricsRegistry

# Dyadic rationals: exactly representable, exactly summable at this scale.
dyadic = st.integers(-2**20, 2**20).map(lambda k: k / 1024.0)
nonneg_dyadic = st.integers(0, 2**20).map(lambda k: k / 1024.0)

_names = st.sampled_from(["obs.alpha", "obs.beta", "obs.gamma"])
_label_values = st.sampled_from(["x", "y"])

# One observation: (series name, kind, label value, measured value).
observation = st.tuples(
    _names, st.sampled_from(["counter", "gauge", "histogram"]),
    _label_values, nonneg_dyadic)
observations = st.lists(observation, max_size=25)


def build(obs_list) -> MetricsRegistry:
    """Replay a generated observation list into a fresh registry."""
    reg = MetricsRegistry()
    for name, kind, label, value in obs_list:
        if kind == "counter":
            reg.counter(name + ".count", side=label).inc(value)
        elif kind == "gauge":
            reg.gauge(name + ".gauge", side=label).set(value)
        else:
            reg.histogram(name + ".hist", side=label).observe(value)
    return reg


def merged(*dumps) -> MetricsRegistry:
    reg = MetricsRegistry()
    for d in dumps:
        reg.merge_dump(d)
    return reg


def as_map(rows) -> dict:
    """Dump rows keyed by series, so comparisons ignore row order."""
    return {(name, labels, kind): state
            for name, labels, kind, state in rows}


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(observations, observations, observations)
    def test_merge_is_associative(self, a, b, c):
        d_a, d_b, d_c = (build(x).dump() for x in (a, b, c))
        left = merged(merged(d_a, d_b).dump(), d_c)
        right = merged(d_a, merged(d_b, d_c).dump())
        assert left.dump() == right.dump()

    @settings(max_examples=60, deadline=None)
    @given(observations, observations)
    def test_counters_and_histograms_commute(self, a, b):
        a = [o for o in a if o[1] != "gauge"]
        b = [o for o in b if o[1] != "gauge"]
        d_a, d_b = build(a).dump(), build(b).dump()
        assert as_map(merged(d_a, d_b).dump()) == \
            as_map(merged(d_b, d_a).dump())

    @settings(max_examples=60, deadline=None)
    @given(dyadic, dyadic)
    def test_gauges_resolve_by_last_write(self, first, second):
        d1 = build([("obs.alpha", "gauge", "x", 0.0)]).dump()
        d1 = [(n, l, k, first) for n, l, k, _ in d1]
        d2 = [(n, l, k, second) for n, l, k, _ in d1]
        assert merged(d1, d2).value("obs.alpha.gauge", side="x") == second
        assert merged(d2, d1).value("obs.alpha.gauge", side="x") == first

    @settings(max_examples=60, deadline=None)
    @given(observations)
    def test_merge_into_empty_is_identity(self, a):
        rows = build(a).dump()
        assert merged(rows).dump() == rows

    @settings(max_examples=60, deadline=None)
    @given(observations, observations)
    def test_merged_dump_matches_single_registry_replay(self, a, b):
        # Gauge series resolve to the later write on both sides, so a
        # merge of two dumps must equal one registry replaying a then b.
        combined = merged(build(a).dump(), build(b).dump())
        replayed = build(a + b)
        assert as_map(combined.dump()) == as_map(replayed.dump())


class TestJsonRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(observations)
    def test_dump_survives_json_float_exact(self, a):
        rows = build(a).dump()
        wire = json.dumps(encode_metrics_dump(rows), sort_keys=True)
        assert decode_metrics_dump(json.loads(wire)) == rows

    @settings(max_examples=80, deadline=None)
    @given(st.floats(allow_nan=False))
    def test_arbitrary_finite_and_inf_floats_round_trip(self, value):
        reg = MetricsRegistry()
        reg.gauge("obs.alpha.gauge").set(value)
        rows = reg.dump()
        wire = json.dumps(encode_metrics_dump(rows))
        back = decode_metrics_dump(json.loads(wire))
        assert back == rows    # json writes Infinity; floats are exact

    @settings(max_examples=40, deadline=None)
    @given(st.lists(nonneg_dyadic, min_size=0, max_size=10))
    def test_histogram_state_round_trips_including_empty(self, values):
        reg = MetricsRegistry()
        h = reg.histogram("obs.alpha.hist")
        for v in values:
            h.observe(v)
        rows = reg.dump()   # empty histogram carries +/-inf sentinels
        wire = json.dumps(encode_metrics_dump(rows))
        back = decode_metrics_dump(json.loads(wire))
        assert back == rows
        fresh = MetricsRegistry()
        fresh.merge_dump(back)
        assert fresh.dump() == rows
