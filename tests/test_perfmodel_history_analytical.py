"""Tests for historical and analytical prediction (§4's alternatives)."""

import numpy as np
import pytest

from repro.apps import GrepApplication, GrepCostProfile
from repro.cloud import Cloud, ExecutionService, Workload
from repro.corpus import html_18mil_like
from repro.perfmodel import (
    AnalyticalStreamModel,
    HistoricalPredictor,
    RunHistory,
    RunRecord,
    calibrate_stream_model,
)
from repro.perfmodel.regression import FitError
from repro.units import KB, MB


class TestRunHistory:
    def test_append_and_filter(self):
        h = RunHistory()
        h.record("grep", 1000, 1.0)
        h.record("postag", 1000, 9.0)
        h.record("grep", 2000, 2.0)
        assert len(h) == 3
        assert len(h.for_app("grep")) == 2

    def test_record_validation(self):
        with pytest.raises(ValueError):
            RunRecord(app="grep", volume=0, seconds=1.0)
        with pytest.raises(ValueError):
            RunRecord(app="grep", volume=1, seconds=0.0)

    def test_points(self):
        h = RunHistory()
        h.record("grep", 100, 1.0)
        x, y = h.points("grep")
        assert x.tolist() == [100.0] and y.tolist() == [1.0]
        assert h.points("other")[0].size == 0


def linear_history(rate=1e-6, setup=1.0, volumes=(1e6, 2e6, 4e6, 8e6),
                   reps=2, jitter=0.0, seed=0):
    rng = np.random.default_rng(seed)
    h = RunHistory()
    for v in volumes:
        for _ in range(reps):
            noise = 1.0 + (rng.normal(0, jitter) if jitter else 0.0)
            h.record("grep", int(v), (setup + rate * v) * noise)
    return h


class TestHistoricalPredictor:
    def test_interpolates_between_buckets(self):
        p = HistoricalPredictor.from_history(linear_history(), "grep")
        assert p.predict(3e6) == pytest.approx(1.0 + 1e-6 * 3e6, rel=1e-9)

    def test_extrapolates_with_marginal_rate(self):
        p = HistoricalPredictor.from_history(linear_history(), "grep")
        assert p.predict(16e6) == pytest.approx(1.0 + 1e-6 * 16e6, rel=1e-6)

    def test_inverse_roundtrip(self):
        p = HistoricalPredictor.from_history(linear_history(), "grep")
        for v in (1.5e6, 5e6, 20e6):
            assert p.inverse(p.predict(v)) == pytest.approx(v, rel=1e-6)

    def test_monotone_enforced(self):
        h = RunHistory()
        h.record("grep", 1000, 5.0)
        h.record("grep", 2000, 3.0)   # noisy dip
        h.record("grep", 4000, 9.0)
        p = HistoricalPredictor.from_history(h, "grep")
        xs = np.linspace(1000, 4000, 20)
        ys = p.predict(xs)
        assert all(a <= b + 1e-12 for a, b in zip(ys, ys[1:]))

    def test_needs_two_volumes(self):
        h = RunHistory()
        h.record("grep", 1000, 1.0)
        h.record("grep", 1000, 1.1)
        with pytest.raises(FitError):
            HistoricalPredictor.from_history(h, "grep")

    def test_unknown_app(self):
        with pytest.raises(FitError):
            HistoricalPredictor.from_history(RunHistory(), "grep")

    def test_inverse_validation(self):
        p = HistoricalPredictor.from_history(linear_history(), "grep")
        with pytest.raises(FitError):
            p.inverse(0.0)


class TestAnalyticalStreamModel:
    def test_prediction_formula(self):
        m = AnalyticalStreamModel(setup=1.0, per_file=0.01, bandwidth=1e6)
        assert m.predict(2e6, 10) == pytest.approx(1.0 + 0.1 + 2.0)

    def test_as_predictor_matches_formula(self):
        m = AnalyticalStreamModel(setup=1.0, per_file=0.01, bandwidth=1e6)
        p = m.as_predictor(unit_size=100_000)
        v = 5e6
        assert p.predict(v) == pytest.approx(m.predict(v, int(v / 100_000)), rel=1e-6)

    def test_validation(self):
        with pytest.raises(FitError):
            AnalyticalStreamModel(setup=0.0, per_file=0.0, bandwidth=0.0)
        m = AnalyticalStreamModel(setup=0.0, per_file=0.0, bandwidth=1.0)
        with pytest.raises(FitError):
            m.predict(-1, 0)
        with pytest.raises(FitError):
            m.as_predictor(0)


class TestCalibration:
    def test_calibrated_primitives_near_ground_truth(self):
        cloud = Cloud(seed=41)
        inst = cloud.launch_instance()
        inst.cpu_factor = inst.io_factor = 1.0
        svc = ExecutionService(cloud, noise_sigma=0.0)
        wl = Workload("grep", GrepApplication(), GrepCostProfile())
        cat = html_18mil_like(scale=3e-4)
        model = calibrate_stream_model(
            svc, inst, wl, cat,
            probe_volume=100 * MB, small_unit=100 * KB, repeats=3)
        truth = GrepCostProfile()
        # per-file overhead recovered within ~20 %
        assert model.per_file == pytest.approx(truth.per_file_overhead, rel=0.2)
        # bandwidth comes from bonnie: the raw disk number, not grep's
        # effective rate (disk + pattern CPU) — the §4 calibration blind spot
        effective_rate = 1.0 / (1.0 / truth.stream_bandwidth + truth.cpu_per_byte)
        assert model.bandwidth > effective_rate

    def test_calibration_validation(self):
        cloud = Cloud(seed=41)
        inst = cloud.launch_instance()
        svc = ExecutionService(cloud)
        wl = Workload("grep", GrepApplication(), GrepCostProfile())
        cat = html_18mil_like(scale=3e-4)
        with pytest.raises(FitError):
            calibrate_stream_model(svc, inst, wl, cat, probe_volume=100 * MB,
                                   small_unit=100 * KB, repeats=0)
