"""Tests for workflow scheduling with full-hour subdeadlines (§7)."""

import numpy as np
import pytest

from repro.apps import (
    ExtractCostProfile,
    ExtractorApplication,
    GrepApplication,
    GrepCostProfile,
    PosCostProfile,
    PosTaggerApplication,
)
from repro.cloud import Cloud, Workload
from repro.core import (
    TextWorkflow,
    WorkflowError,
    WorkflowStage,
    assign_subdeadlines,
    execute_workflow,
)
from repro.corpus import html_18mil_like
from repro.perfmodel.regression import fit_affine
from repro.units import HOUR


def affine(a, b):
    x = np.array([1e5, 1e6, 1e7])
    return fit_affine(x, a + b * x)


def grep_stage(name="filter", ratio=0.5):
    return WorkflowStage(name=name,
                         workload=Workload("grep", GrepApplication(), GrepCostProfile()),
                         predictor=affine(0.2, 1.3e-8), output_ratio=ratio)


def extract_stage(name="extract"):
    return WorkflowStage(name=name,
                         workload=Workload("extract", ExtractorApplication(),
                                           ExtractCostProfile()),
                         predictor=affine(0.3, 3e-8), output_ratio=0.95,
                         strips_markup=True)


def pos_stage(name="tag"):
    return WorkflowStage(name=name,
                         workload=Workload("postag", PosTaggerApplication(),
                                           PosCostProfile()),
                         predictor=affine(3.0, 0.9e-4))


def pipeline() -> TextWorkflow:
    wf = TextWorkflow()
    wf.add_stage(grep_stage())
    wf.add_stage(extract_stage(), after=["filter"])
    wf.add_stage(pos_stage(), after=["extract"])
    return wf


class TestWorkflowConstruction:
    def test_topological_order(self):
        wf = pipeline()
        assert [s.name for s in wf.stages()] == ["filter", "extract", "tag"]

    def test_duplicate_rejected(self):
        wf = pipeline()
        with pytest.raises(WorkflowError):
            wf.add_stage(grep_stage())

    def test_unknown_dependency_rejected(self):
        wf = TextWorkflow()
        with pytest.raises(WorkflowError):
            wf.add_stage(grep_stage(), after=["nope"])

    def test_cycle_rejected(self):
        wf = TextWorkflow()
        wf.add_stage(grep_stage("a"))
        wf.add_stage(grep_stage("b"), after=["a"])
        # manual edge to provoke a cycle through the public API path
        with pytest.raises(WorkflowError):
            wf._graph.add_edge("b", "a")
            wf.add_stage(grep_stage("c"), after=["a"])

    def test_bad_output_ratio(self):
        with pytest.raises(WorkflowError):
            grep_stage(ratio=1.5)

    def test_stage_lookup(self):
        wf = pipeline()
        assert wf.stage("extract").strips_markup
        with pytest.raises(WorkflowError):
            wf.stage("missing")


class TestStageVolumes:
    def test_volumes_flow_through_ratios(self):
        wf = pipeline()
        vols = wf.stage_volumes(1_000_000)
        assert vols["filter"] == 1_000_000
        assert vols["extract"] == 500_000
        assert vols["tag"] == 475_000

    def test_fan_in_sums(self):
        wf = TextWorkflow()
        wf.add_stage(grep_stage("a", ratio=0.4))
        wf.add_stage(grep_stage("b", ratio=0.2))
        wf.add_stage(pos_stage("join"), after=["a", "b"])
        vols = wf.stage_volumes(1_000_000)
        assert vols["join"] == 400_000 + 200_000


class TestSubdeadlines:
    def test_shares_sum_to_deadline_without_alignment(self):
        wf = pipeline()
        shares = assign_subdeadlines(wf, 10**7, 1800.0, hour_align=False)
        assert sum(shares.values()) == pytest.approx(1800.0)
        # POS dominates predicted work, so it gets the lion's share
        assert shares["tag"] > shares["filter"] + shares["extract"]

    def test_hour_alignment_produces_whole_hours(self):
        wf = pipeline()
        shares = assign_subdeadlines(wf, 10**9, 6 * HOUR)
        assert all(s % HOUR == 0 for s in shares.values())
        assert sum(shares.values()) == 6 * HOUR
        assert all(s >= HOUR for s in shares.values())

    def test_alignment_skipped_when_budget_too_small(self):
        wf = pipeline()
        shares = assign_subdeadlines(wf, 10**7, 2 * HOUR)  # 3 stages, 2 hours
        assert sum(shares.values()) == pytest.approx(2 * HOUR)
        assert any(s % HOUR != 0 for s in shares.values())

    def test_bad_deadline(self):
        with pytest.raises(WorkflowError):
            assign_subdeadlines(pipeline(), 10**6, 0.0)

    def test_empty_workflow(self):
        with pytest.raises(WorkflowError):
            assign_subdeadlines(TextWorkflow(), 10**6, HOUR)


class TestExecuteWorkflow:
    def test_pipeline_runs_all_stages(self):
        cloud = Cloud(seed=9)
        cat = html_18mil_like(scale=2e-5)
        report = execute_workflow(cloud, pipeline(), cat, deadline=3 * HOUR)
        assert set(report.stage_reports) == {"filter", "extract", "tag"}
        assert report.makespan > 0
        assert report.instance_hours >= 3
        assert report.cost == pytest.approx(report.instance_hours * 0.085)

    def test_intermediate_volume_shrinks(self):
        cloud = Cloud(seed=9)
        cat = html_18mil_like(scale=2e-5)
        report = execute_workflow(cloud, pipeline(), cat, deadline=3 * HOUR)
        v_filter = sum(r.volume for r in report.stage_reports["filter"].runs)
        v_tag = sum(r.volume for r in report.stage_reports["tag"].runs)
        assert v_tag < v_filter

    def test_deterministic(self):
        cat = html_18mil_like(scale=2e-5)

        def run(seed):
            return execute_workflow(Cloud(seed=seed), pipeline(), cat,
                                    deadline=3 * HOUR).makespan

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_summary_structure(self):
        cloud = Cloud(seed=9)
        cat = html_18mil_like(scale=2e-5)
        s = execute_workflow(cloud, pipeline(), cat, deadline=3 * HOUR).summary()
        assert set(s["stages"]) == {"filter", "extract", "tag"}
        assert "met" in s and "cost_usd" in s
