"""Tests for ``repro.fleet`` — leases, warm pool, admission, scheduling.

Covers the control plane's contracts: warm-pool best-fit on the packing
index, lease lifecycle errors, explicit (never silent) admission
decisions, exact per-tenant cost attribution, and the headline economics
— a shared fleet bills less than isolated runs of the same campaigns.
"""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import GrepApplication, GrepCostProfile
from repro.cloud import Cloud, Workload
from repro.core import StaticProvisioner, reshape
from repro.corpus import text_400k_like
from repro.fleet import (
    ADMITTED,
    DEFERRED,
    REJECTED,
    AdmissionController,
    FleetRequest,
    FleetScheduler,
    LeaseError,
    LeaseManager,
    Tenant,
    TenantRegistry,
    WarmPool,
)
from repro.perfmodel.regression import fit_affine
from repro.runner import execute_on_fleet, execute_plan
from repro.units import HOUR, KB, MB


def grep_workload():
    return Workload("grep", GrepApplication(), GrepCostProfile())


def make_plan(deadline=3600.0, scale=0.02, chunk=100 * KB, strategy="uniform"):
    model = fit_affine(np.array([1 * MB, 5 * MB, 10 * MB]),
                       np.array([35.0, 160.0, 310.0]))
    cat = text_400k_like(scale=scale)
    units = list(reshape(cat, chunk).units)
    return StaticProvisioner(model).plan(units, deadline, strategy=strategy)


class FixedBoot:
    """Deterministic quality factor so throughput never varies."""

    def draw_factor(self, rng):
        return 1.0


def make_cloud(seed=7):
    return Cloud(seed=seed, heterogeneity=FixedBoot())


# ---------------------------------------------------------------------------
# WarmPool


class TestWarmPool:
    def mk_inst(self, cloud):
        inst = cloud.launch_instance(wait=False)
        inst.mark_running(inst.ready_at)
        return inst

    def test_best_fit_prefers_smallest_remainder(self):
        cloud = make_cloud()
        pool = WarmPool()
        small = self.mk_inst(cloud)
        big = self.mk_inst(cloud)
        pool.put(small, available_at=0.0, boundary=600.0)    # 600 s left
        pool.put(big, available_at=0.0, boundary=3600.0)     # 3600 s left
        entry, eff = pool.take(need_seconds=500.0, at=0.0)
        assert entry.instance is small
        assert eff == 0.0
        assert len(pool) == 1

    def test_take_returns_none_when_nothing_fits(self):
        pool = WarmPool()
        cloud = make_cloud()
        pool.put(self.mk_inst(cloud), available_at=0.0, boundary=100.0)
        assert pool.take(need_seconds=500.0, at=0.0) is None
        assert len(pool) == 1  # unfit entries stay pooled

    def test_stale_keys_are_rekeyed_lazily(self):
        """An entry released long before ``at`` has a shrunken usable
        window; take() must re-key it rather than hand out expired time."""
        pool = WarmPool()
        cloud = make_cloud()
        inst = self.mk_inst(cloud)
        pool.put(inst, available_at=0.0, boundary=3600.0)
        # At t=3400 only 200 s remain although the key says 3600.
        assert pool.take(need_seconds=1000.0, at=3400.0) is None
        taken = pool.take(need_seconds=100.0, at=3400.0)
        assert taken is not None and taken[0].instance is inst
        assert taken[1] == 3400.0

    def test_take_earliest_ignores_remainder(self):
        pool = WarmPool()
        cloud = make_cloud()
        first = self.mk_inst(cloud)
        later = self.mk_inst(cloud)
        pool.put(later, available_at=50.0, boundary=3600.0)
        pool.put(first, available_at=10.0, boundary=600.0)
        entry, eff = pool.take_earliest(at=0.0)
        assert entry.instance is first
        assert eff == 10.0


# ---------------------------------------------------------------------------
# LeaseManager


class TestLeaseManager:
    def test_cold_lease_pays_boot_delay(self):
        cloud = make_cloud()
        mgr = LeaseManager(cloud)
        lease = mgr.acquire("t", est_seconds=100.0, at=0.0)
        assert lease.source == "cold"
        assert lease.ready_at == pytest.approx(lease.instance.boot_delay)
        assert mgr.stats()["pool_misses"] == 1

    def test_warm_reuse_skips_boot_and_extra_hour(self):
        cloud = make_cloud()
        mgr = LeaseManager(cloud)
        a = mgr.acquire("t", est_seconds=100.0, at=0.0)
        mgr.release(a, a.ready_at + 100.0)
        b = mgr.acquire("t", est_seconds=100.0, at=a.ready_at + 100.0)
        assert b.source == "warm"
        assert b.instance is a.instance
        assert b.ready_at == a.ready_at + 100.0   # no boot delay
        mgr.release(b, b.ready_at + 100.0)
        cloud.advance(HOUR + 600.0)
        mgr.shutdown()
        # Both leases fit in the instance's first paid hour.
        assert sum(r.hours for r in mgr.records) == 1

    def test_release_before_ready_and_double_release_raise(self):
        cloud = make_cloud()
        mgr = LeaseManager(cloud)
        lease = mgr.acquire("t", est_seconds=10.0, at=0.0)
        with pytest.raises(LeaseError):
            mgr.release(lease, lease.ready_at - 1.0)
        mgr.release(lease, lease.ready_at + 1.0)
        with pytest.raises(LeaseError):
            mgr.release(lease, lease.ready_at + 2.0)

    def test_shutdown_refuses_active_leases(self):
        cloud = make_cloud()
        mgr = LeaseManager(cloud)
        mgr.acquire("t", est_seconds=10.0, at=0.0)
        with pytest.raises(LeaseError):
            mgr.shutdown()

    def test_capacity_cap_falls_back_to_extension(self):
        cloud = make_cloud()
        mgr = LeaseManager(cloud, max_instances=1)
        a = mgr.acquire("t", est_seconds=100.0, at=0.0)
        mgr.release(a, a.ready_at + 100.0)
        # Ask for more than the remaining paid hour: pool can't fit it,
        # no boot slot left → extension into a new paid hour.
        b = mgr.acquire("t", est_seconds=2 * HOUR, at=a.ready_at + 100.0)
        assert b.source == "extension"
        assert b.instance is a.instance
        assert mgr.stats()["pool_extensions"] == 1

    def test_capacity_cap_without_pool_raises(self):
        cloud = make_cloud()
        mgr = LeaseManager(cloud, max_instances=1)
        mgr.acquire("t", est_seconds=10.0, at=0.0)
        with pytest.raises(LeaseError):
            mgr.acquire("t", est_seconds=10.0, at=0.0)

    def test_idle_tail_is_never_billed(self):
        """Retirement is retroactive at last use: pooling an instance for
        hours after its final lease must not add billed hours."""
        cloud = make_cloud()
        mgr = LeaseManager(cloud)
        lease = mgr.acquire("t", est_seconds=100.0, at=0.0)
        end = lease.ready_at + 100.0
        mgr.release(lease, end)
        cloud.advance(10 * HOUR)   # fleet sits idle for 10 hours
        mgr.shutdown()
        assert len(mgr.records) == 1
        assert mgr.records[0].hours == 1
        assert mgr.records[0].duration == pytest.approx(100.0)  # run→last use

    def test_reap_retires_expired_remainders(self):
        cloud = make_cloud()
        mgr = LeaseManager(cloud)
        lease = mgr.acquire("t", est_seconds=100.0, at=0.0)
        mgr.release(lease, lease.ready_at + 100.0)
        cloud.advance(2 * HOUR)
        assert mgr.reap(cloud.now) == 1
        assert mgr.stats()["reaped"] == 1
        assert len(mgr.pool) == 0

    def test_owns_tracks_every_granted_instance(self):
        cloud = make_cloud()
        mgr = LeaseManager(cloud)
        lease = mgr.acquire("t", est_seconds=10.0, at=0.0)
        outsider = cloud.launch_instance(wait=False)
        assert mgr.owns(lease.instance.instance_id)
        assert not mgr.owns(outsider.instance_id)


# ---------------------------------------------------------------------------
# Admission control — decisions are explicit, never silent


class TestAdmission:
    def setup_method(self):
        self.registry = TenantRegistry()
        self.registry.register(Tenant("acme", max_concurrent_instances=8))
        self.registry.register(Tenant("tiny", budget_usd=0.01))
        self.ctrl = AdmissionController(self.registry, max_queue_depth=2)
        self.plan = make_plan()

    def req(self, tenant, name="c"):
        return FleetRequest(tenant, grep_workload(), self.plan, name)

    def test_unknown_tenant_rejected_with_reason(self):
        d = self.ctrl.review(self.req("ghost"), queue_depth=0)
        assert d.rejected and "unknown tenant" in d.reason

    def test_budget_exhaustion_rejected_with_reason(self):
        d = self.ctrl.review(self.req("tiny"), queue_depth=0)
        assert d.rejected and d.reason.startswith("budget")
        assert d.est_cost_usd > 0.01

    def test_backpressure_bounds_the_queue(self):
        d = self.ctrl.review(self.req("acme"), queue_depth=2)
        assert d.rejected and d.reason.startswith("backpressure")

    def test_second_campaign_same_tenant_deferred(self):
        a = self.ctrl.review(self.req("acme", "c1"), queue_depth=0)
        b = self.ctrl.review(self.req("acme", "c2"), queue_depth=1,
                             tenant_active_campaigns=1)
        assert a.admitted
        assert b.deferred and b.enqueued

    def test_every_submission_gets_a_decision(self):
        """Scheduler-level observability: no submission is dropped
        silently — each lands in ``decisions`` with kind and reason."""
        cloud = make_cloud()
        sched = FleetScheduler(cloud, LeaseManager(cloud),
                               AdmissionController(self.registry,
                                                   max_queue_depth=1))
        kinds = [sched.submit(self.req(t, n)).kind
                 for t, n in [("acme", "a"), ("ghost", "x"), ("acme", "b")]]
        assert kinds == [ADMITTED, REJECTED, REJECTED]
        assert len(sched.decisions) == 3
        assert all(d.reason for _, d in sched.decisions)
        report = sched.run()
        assert len(report.rejected) == 2
        assert {r.name for r, _ in report.rejected} == {"x", "b"}

    def test_admission_metrics_are_emitted(self):
        from repro.obs import Obs
        cloud = Cloud(seed=1, heterogeneity=FixedBoot(),
                      obs=Obs.on(trace=False))
        sched = FleetScheduler(cloud, LeaseManager(cloud),
                               AdmissionController(self.registry))
        sched.submit(self.req("acme"))
        sched.submit(self.req("ghost"))
        metrics = cloud.obs.metrics
        assert metrics.value("fleet.admission.decisions", kind="admitted") == 1
        assert metrics.value("fleet.admission.decisions", kind="rejected") == 1


# ---------------------------------------------------------------------------
# Scheduler end-to-end


def run_fleet(n_campaigns=4, tenants=("acme", "globex"), max_instances=4,
              seed=11, deadline=2 * HOUR):
    cloud = make_cloud(seed=seed)
    registry = TenantRegistry()
    for t in tenants:
        registry.register(Tenant(t, max_concurrent_instances=4))
    leases = LeaseManager(cloud, max_instances=max_instances)
    sched = FleetScheduler(cloud, leases, AdmissionController(registry))
    wl = grep_workload()
    for i in range(n_campaigns):
        plan = make_plan(deadline=deadline)
        sched.submit(FleetRequest(tenants[i % len(tenants)], wl, plan,
                                  f"campaign-{i}"))
    return cloud, sched.run()


class TestFleetScheduler:
    def test_all_enqueued_campaigns_complete(self):
        _, report = run_fleet()
        assert len(report.outcomes) == 4
        assert all(o.runs for o in report.outcomes)

    def test_fleet_shares_instances_across_campaigns(self):
        cloud, report = run_fleet()
        assert report.warm_hit_rate > 0
        assert len(report.records) < report.n_bins

    def test_ledger_matches_report(self):
        cloud, report = run_fleet()
        assert report.total_cost == pytest.approx(cloud.ledger.total_cost)
        assert report.total_billed_hours == cloud.ledger.total_instance_hours

    def test_attribution_sums_exactly_to_total(self):
        _, report = run_fleet()
        per_tenant = report.per_tenant_cost()
        assert sum(per_tenant.values()) == report.total_cost  # exact, not approx
        per_campaign = report.per_campaign_cost()
        assert sum(per_campaign.values()) == report.total_cost

    def test_quota_throttles_concurrency(self):
        """A tenant with quota 1 never has two bins running at once."""
        cloud = make_cloud()
        registry = TenantRegistry()
        registry.register(Tenant("solo", max_concurrent_instances=1))
        leases = LeaseManager(cloud, max_instances=4)
        sched = FleetScheduler(cloud, leases, AdmissionController(registry))
        wl = grep_workload()
        for i in range(2):
            sched.submit(FleetRequest("solo", wl, make_plan(), f"c{i}"))
        report = sched.run()
        spans = sorted((r.start, r.end)
                       for o in report.outcomes for r in o.runs)
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert s2 >= e1 - 1e-9

    def test_weighted_fair_share_orders_service(self):
        """With equal demand, the heavier tenant gets earlier slots."""
        cloud = make_cloud()
        registry = TenantRegistry()
        registry.register(Tenant("gold", weight=4.0,
                                 max_concurrent_instances=8))
        registry.register(Tenant("econ", weight=1.0,
                                 max_concurrent_instances=8))
        leases = LeaseManager(cloud, max_instances=4)
        sched = FleetScheduler(cloud, leases, AdmissionController(registry))
        wl = grep_workload()
        sched.submit(FleetRequest("econ", wl, make_plan(deadline=120.0), "e"))
        sched.submit(FleetRequest("gold", wl, make_plan(deadline=120.0), "g"))
        report = sched.run()
        # Starts are virtual (boot delays), so assert on *placement* order:
        # lease IDs are sequential, and the 4× weight means gold's bins are
        # placed earlier on average despite econ submitting first.
        order = {o.request.tenant: sorted(r.lease_id for r in o.runs)
                 for o in report.outcomes}
        mean_pos = {t: sum(int(l.split("-")[1]) for l in ids) / len(ids)
                    for t, ids in order.items()}
        assert mean_pos["gold"] < mean_pos["econ"]


# ---------------------------------------------------------------------------
# Property: attribution is exact under arbitrary slice layouts


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 3),            # instance
              st.sampled_from(["a", "b", "c"]),   # tenant
              st.floats(0.0, 3600.0),       # start offset
              st.floats(1.0, 3600.0)),      # duration
    min_size=1, max_size=24))
def test_attribution_property_sums_exactly(raw):
    from repro.cloud.billing import UsageRecord
    from repro.fleet.lease import UsageSlice
    from repro.fleet.report import FleetReport

    slices, latest = [], {}
    for i, (inst, tenant, t0, dur) in enumerate(raw):
        iid = f"i-{inst}"
        slices.append(UsageSlice(iid, f"l-{i}", tenant, None, t0, t0 + dur))
        latest[iid] = max(latest.get(iid, 0.0), t0 + dur)
    records = [
        UsageRecord(iid, "m1.small", 0.0, end, 0.085)
        for iid, end in latest.items()
    ]
    report = FleetReport(outcomes=[], rejected=[], records=records,
                         slices=slices)
    for attribution in (report.per_tenant_cost(), report.per_campaign_cost()):
        assert sum(attribution.values()) == report.total_cost


# ---------------------------------------------------------------------------
# The headline economics: shared fleet < isolated runs


class TestSharedVsIsolated:
    def test_shared_fleet_is_cheaper_than_isolated(self):
        n = 4
        shared_cloud, report = run_fleet(n_campaigns=n, seed=23)
        iso_cost = 0.0
        for i in range(n):
            cloud = make_cloud(seed=23)
            rep = execute_plan(cloud, grep_workload(), make_plan())
            iso_cost += cloud.ledger.total_cost
        assert report.total_cost < iso_cost
        assert report.warm_hit_rate > 0
        assert report.miss_rate == 0.0


# ---------------------------------------------------------------------------
# Dynamic runner: replacement prefers a warm-pool lease over a fresh boot


class Sequenced:
    """Quality factors drawn from an explicit script, then a default."""

    def __init__(self, factors, default=1.0):
        self.factors = list(factors)
        self.default = default

    def draw_factor(self, rng):
        return self.factors.pop(0) if self.factors else self.default


class TestDynamicLeaseReplacement:
    def dyn_plan(self):
        from repro.apps import PosCostProfile, PosTaggerApplication
        x = np.array([1e5, 1e6, 5e6])
        model = fit_affine(x, 0.327 + 0.865e-4 * x)
        cat = text_400k_like(scale=5e-2)
        plan = StaticProvisioner(model).plan(
            list(reshape(cat, None).units), 500.0, strategy="uniform")
        wl = Workload("postag", PosTaggerApplication(), PosCostProfile())
        return plan, wl

    def run_dynamic(self, prewarm):
        from repro.runner import DynamicPolicy, execute_with_monitoring
        plan, wl = self.dyn_plan()
        n = plan.n_instances
        # Warmup instances (if any) boot first and must be fast; the
        # campaign's own instances are slow so every bin needs a
        # replacement; replacements drawn later default to fast.  Each
        # launch consumes two draws (cpu + io factors).
        script = ([1.0] * 2 * n + [0.35] * 2 * n if prewarm
                  else [0.35] * 2 * n)
        cloud = Cloud(seed=3, heterogeneity=Sequenced(script))
        mgr = LeaseManager(cloud)
        if prewarm:
            # Boot n distinct fast instances before the campaign starts
            # (hold every lease until all are granted — releasing early
            # would let later acquires warm-hit instead of booting), then
            # pool them with nearly a full paid hour left each.
            held = [mgr.acquire("warmup", est_seconds=1.0, at=cloud.now)
                    for _ in range(n)]
            for lease in held:
                mgr.release(lease, lease.ready_at + 1.0)
        report, events = execute_with_monitoring(
            cloud, wl, plan, policy=DynamicPolicy(slow_threshold=0.7),
            lease_manager=mgr)
        cloud.advance(HOUR)
        mgr.shutdown()
        return cloud, mgr, report, events

    def test_replacement_draws_warm_lease_when_pool_has_one(self):
        cloud, mgr, report, events = self.run_dynamic(prewarm=True)
        assert events
        replaced = {e.new_instance for e in events}
        warm_ids = {lease.instance.instance_id for lease in mgr.leases
                    if lease.tenant == "warmup"}
        assert replaced & warm_ids       # warmed instances got reused
        assert mgr.stats()["pool_hits"] >= 1

    def test_replacement_cold_boots_on_empty_pool(self):
        cloud, mgr, report, events = self.run_dynamic(prewarm=False)
        assert events
        dyn_leases = [l for l in mgr.leases if l.tenant == "dynamic"]
        # The first replacement has nothing to reuse: it must cold boot.
        # (Later bins may warm-hit the pool it seeds — that's the point.)
        first = min(dyn_leases, key=lambda l: l.lease_id)
        assert first.source == "cold"

    def test_warm_replacement_is_faster_than_cold(self):
        """A pooled replacement skips the boot: for every replaced bin the
        warm run's wall time is shorter than the cold run's."""
        _, _, warm_rep, warm_ev = self.run_dynamic(prewarm=True)
        _, _, cold_rep, cold_ev = self.run_dynamic(prewarm=False)
        warm_bins = {e.bin_index for e in warm_ev}
        cold_bins = {e.bin_index for e in cold_ev}
        assert warm_bins == cold_bins
        for wr, cr in zip(warm_rep.runs, cold_rep.runs):
            assert wr.duration <= cr.duration + 1e-6

    def test_no_double_billing_with_lease_manager(self):
        """Every instance appears in the ledger exactly once."""
        cloud, mgr, report, events = self.run_dynamic(prewarm=True)
        ids = [r.instance_id for r in cloud.ledger.records]
        assert len(ids) == len(set(ids))


# ---------------------------------------------------------------------------
# execute_on_fleet


class TestExecuteOnFleet:
    def test_consecutive_campaigns_share_paid_hours(self):
        cloud = make_cloud()
        mgr = LeaseManager(cloud, max_instances=4)
        wl = grep_workload()
        p1, p2 = make_plan(), make_plan()
        r1 = execute_on_fleet(mgr, wl, p1, tenant="acme", campaign="c1")
        r2 = execute_on_fleet(mgr, wl, p2, tenant="acme", campaign="c2")
        assert r1.strategy.endswith("+fleet")
        assert p2.reused_bins > 0
        assert any(v.startswith(("warm:", "extension:"))
                   for v in p2.lease_sources.values())
        mgr.shutdown()
        # Strictly cheaper than two isolated ceil-hour campaigns.
        assert (cloud.ledger.total_instance_hours
                < p1.n_instances + p2.n_instances)

    def test_boot_delay_reflects_wait(self):
        cloud = make_cloud()
        mgr = LeaseManager(cloud)
        plan = make_plan()
        rep = execute_on_fleet(mgr, grep_workload(), plan)
        for run in rep.runs:
            assert run.boot_delay > 0   # cold boots on an empty pool
        for lease in mgr.leases:
            mgr_release = lease.state.value
            assert mgr_release == "released"
