"""Exporter identity: raw-tuple/bulk span paths vs the eager span path.

The tracer stores raw tuples and materialises ``SpanRecord`` objects
lazily; ``add_spans`` bulk rows additionally skip the per-span args dict
(``args=None``).  Both Chrome-trace and JSONL exports must be
byte-identical no matter which recording path produced the spans —
otherwise a perf-motivated switch to the fast path would silently change
committed trace artifacts.
"""

from repro.obs.export import to_chrome_trace, write_chrome_trace, write_jsonl
from repro.obs.trace import Tracer


def _scripted_clock(times):
    queue = list(times)
    return lambda: queue.pop(0)


def _eager_tracer() -> Tracer:
    """Spans recorded live through the context-manager path."""
    tracer = Tracer(clock=_scripted_clock(
        [1.0, 2.5, 2.5, 2.5, 3.0, 4.0, 10.0, 11.0, 12.0, 13.0, 20.0]))
    with tracer.span("runner.execute", cat="runner", bin=0):
        pass                                   # [1.0, 2.5]
    with tracer.span("runner.execute", cat="runner", bin=1):
        pass                                   # [2.5, 2.5] zero-length
    with tracer.span("fleet.lease", cat="fleet", track="fleet"):
        pass                                   # [3.0, 4.0]
    # The bulk column: two same-name spans with no args.
    with tracer.span("col.member", cat="columnar", track="col"):
        pass                                   # [10.0, 11.0]
    with tracer.span("col.member", cat="columnar", track="col"):
        pass                                   # [12.0, 13.0]
    tracer.instant("engine.fire", cat="sim")   # t=20.0
    return tracer


def _fast_tracer() -> Tracer:
    """The same history via add_span (raw tuples) + add_spans (bulk)."""
    tracer = Tracer(clock=_scripted_clock([20.0]))
    tracer.add_span("runner.execute", 1.0, 2.5, cat="runner", bin=0)
    tracer.add_span("runner.execute", 2.5, 2.5, cat="runner", bin=1)
    tracer.add_span("fleet.lease", 3.0, 4.0, cat="fleet", track="fleet")
    assert tracer.add_spans("col.member", [10.0, 12.0], [11.0, 13.0],
                            cat="columnar", track="col") == 2
    tracer.instant("engine.fire", cat="sim")
    return tracer


class TestExportIdentity:
    def test_chrome_trace_documents_identical(self):
        eager = to_chrome_trace(_eager_tracer())
        fast = to_chrome_trace(_fast_tracer())
        assert eager == fast

    def test_chrome_trace_files_byte_identical(self, tmp_path):
        a, b = tmp_path / "eager.json", tmp_path / "fast.json"
        write_chrome_trace(_eager_tracer(), a)
        write_chrome_trace(_fast_tracer(), b)
        assert a.read_bytes() == b.read_bytes()

    def test_jsonl_files_byte_identical(self, tmp_path):
        a, b = tmp_path / "eager.jsonl", tmp_path / "fast.jsonl"
        write_jsonl(_eager_tracer(), a)
        write_jsonl(_fast_tracer(), b)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes().count(b"\n") > 0

    def test_materialisation_does_not_change_exports(self, tmp_path):
        # Reading .spans materialises the raw tail; exports must not care.
        tracer = _fast_tracer()
        before = to_chrome_trace(tracer)
        assert tracer.spans                    # force materialisation
        assert to_chrome_trace(tracer) == before

    def test_bulk_rows_materialise_with_empty_args(self):
        tracer = _fast_tracer()
        bulk = [s for s in tracer.spans if s.name == "col.member"]
        assert len(bulk) == 2
        assert all(s.args == {} for s in bulk)
