"""Tests for Gantt rendering and campaign error paths."""

import numpy as np
import pytest

from repro.apps import PosCostProfile, PosTaggerApplication
from repro.cloud import Cloud, Workload
from repro.core import Campaign, PlanError, StaticProvisioner, reshape
from repro.corpus import text_400k_like
from repro.perfmodel.regression import fit_affine
from repro.report import render_gantt
from repro.runner import execute_plan
from repro.runner.execute import ExecutionReport, InstanceRun
from repro.units import KB


def sample_report(missed=False):
    runs = [
        InstanceRun("i-000001", 5, 1000, boot_delay=100.0,
                    duration=3000.0, predicted=2900.0),
        InstanceRun("i-000002", 5, 1000, boot_delay=120.0,
                    duration=4000.0 if missed else 3100.0, predicted=2900.0),
    ]
    return ExecutionReport(deadline=3600.0, strategy="uniform", runs=runs)


class TestGantt:
    def test_rows_and_summary(self):
        out = render_gantt(sample_report())
        lines = out.splitlines()
        assert len(lines) == 4  # header + 2 instances + summary
        assert "i-000001" in lines[1] and "i-000002" in lines[2]
        assert "makespan" in lines[-1]

    def test_deadline_marker_present(self):
        out = render_gantt(sample_report())
        assert "|" in out

    def test_miss_flagged(self):
        out = render_gantt(sample_report(missed=True))
        assert "!" in out
        assert "1 missed" in out

    def test_boot_phase_optional(self):
        with_boot = render_gantt(sample_report(), include_boot=True)
        without = render_gantt(sample_report(), include_boot=False)
        assert "b" in with_boot.splitlines()[1]
        assert "b" not in without.splitlines()[1].split()[1]

    def test_empty_report(self):
        assert "(no instances ran)" in render_gantt(
            ExecutionReport(deadline=10.0, strategy="x"))

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_gantt(sample_report(), width=5)

    def test_real_execution_renders(self):
        x = np.array([1e5, 1e6, 5e6])
        model = fit_affine(x, 0.327 + 0.865e-4 * x)
        cat = text_400k_like(scale=2e-3)
        plan = StaticProvisioner(model).plan(
            list(reshape(cat, None).units), 30.0, strategy="uniform")
        report = execute_plan(Cloud(seed=6), Workload(
            "postag", PosTaggerApplication(), PosCostProfile()), plan)
        out = render_gantt(report)
        assert out.count("\n") == report.n_instances + 1


class TestCampaignErrorPaths:
    def test_impossible_deadline_raises_plan_error(self):
        cloud = Cloud(seed=60)
        wl = Workload("postag", PosTaggerApplication(), PosCostProfile())
        cat = text_400k_like(scale=0.01)
        campaign = Campaign(cloud, wl, cat, probe_repeats=2)
        with pytest.raises(PlanError):
            campaign.run(deadline=0.5,  # below any model intercept
                         initial_volume=100 * KB,
                         unit_sizes_for=lambda v: [10 * KB])

    def test_probe_volume_larger_than_catalogue_is_capped(self):
        cloud = Cloud(seed=61)
        wl = Workload("postag", PosTaggerApplication(), PosCostProfile())
        cat = text_400k_like(scale=2e-3)
        campaign = Campaign(cloud, wl, cat, probe_repeats=2)
        result = campaign.run(deadline=120.0,
                              initial_volume=cat.total_size * 10,
                              unit_sizes_for=lambda v: [10 * KB])
        assert result.report.n_instances >= 1
