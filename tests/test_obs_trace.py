"""Tests for the span tracer and its exporters."""

import json

import pytest

from repro.obs.export import (
    chrome_trace_events,
    iter_jsonl_lines,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import NULL_SPAN, Tracer


class FakeClock:
    """Settable clock so tests control span endpoints exactly."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestTracerBasics:
    def test_live_span_records_interval(self):
        clk = FakeClock()
        tr = Tracer(clk)
        with tr.span("work.step.one", cat="work", track="w"):
            clk.t = 3.0
        (s,) = tr.spans
        assert (s.name, s.cat, s.t0, s.t1, s.track) == \
            ("work.step.one", "work", 0.0, 3.0, "w")
        assert s.duration == 3.0

    def test_span_args_and_set(self):
        tr = Tracer(FakeClock())
        with tr.span("a.b", x=1) as sp:
            sp.set(y=2)
        assert tr.spans[0].args == {"x": 1, "y": 2}

    def test_span_error_annotation(self):
        tr = Tracer(FakeClock())
        with pytest.raises(KeyError):
            with tr.span("a.b"):
                raise KeyError("boom")
        assert tr.spans[0].args["error"] == "KeyError"

    def test_nesting_depth_per_track(self):
        clk = FakeClock()
        tr = Tracer(clk)
        with tr.span("outer", track="t"):
            with tr.span("inner", track="t"):
                with tr.span("other", track="u"):
                    pass
        by_name = {s.name: s for s in tr.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["other"].depth == 0

    def test_add_span_rejects_backwards_interval(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            tr.add_span("a.b", 5.0, 4.0)

    def test_add_span_and_instant(self):
        tr = Tracer(FakeClock(7.0))
        tr.add_span("a.b", 1.0, 2.0, cat="x", track="r", n=3)
        tr.instant("a.c", cat="x", track="r")
        assert tr.span_count == 1
        assert tr.instants[0].t == 7.0
        assert tr.event_count == 2
        assert tr.categories() == {"x"}
        assert tr.tracks() == ["r"]

    def test_bind_clock_repoints(self):
        tr = Tracer()
        assert tr.now == 0.0
        tr.bind_clock(FakeClock(9.0))
        assert tr.now == 9.0

    def test_reset_clears_records(self):
        tr = Tracer(FakeClock())
        tr.add_span("a.b", 0.0, 1.0)
        tr.instant("a.c")
        tr.reset()
        assert tr.event_count == 0

    def test_max_records_drops_and_counts(self):
        tr = Tracer(FakeClock(), max_records=2)
        tr.add_span("a.b", 0.0, 1.0)
        tr.instant("a.c")
        tr.add_span("a.d", 1.0, 2.0)
        tr.instant("a.e")
        assert tr.event_count == 2
        assert tr.dropped == 2


class TestDisabledFastPath:
    """Satellite: the disabled tracer allocates and records nothing."""

    def test_span_returns_shared_null_singleton(self):
        tr = Tracer(enabled=False)
        # identity proves no per-call allocation happens
        assert tr.span("a.b", cat="x", n=1) is NULL_SPAN
        assert tr.span("c.d") is tr.span("e.f")

    def test_null_span_is_inert_context_manager(self):
        tr = Tracer(enabled=False)
        with tr.span("a.b") as sp:
            assert sp.set(x=1) is sp
        assert tr.span_count == 0

    def test_disabled_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.add_span("a.b", 0.0, 1.0)
        tr.instant("a.c")
        assert tr.event_count == 0
        assert tr.categories() == set()


def _payload(events):
    """Chrome events minus thread-name metadata."""
    return [e for e in events if e["ph"] != "M"]


class TestChromeExport:
    def _nested_tracer(self):
        clk = FakeClock()
        tr = Tracer(clk)
        with tr.span("outer", cat="a", track="t"):
            clk.t = 1.0
            with tr.span("inner", cat="a", track="t"):
                clk.t = 2.0
            clk.t = 4.0
        tr.add_span("zero", 2.0, 2.0, cat="b", track="t")
        tr.instant("tick", cat="b", track="u")
        return tr

    def test_round_trip_is_valid_json(self, tmp_path):
        tr = self._nested_tracer()
        path = write_chrome_trace(tr, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["otherData"]["spans"] == 3
        assert doc["otherData"]["clock"] == "simulated-seconds"
        assert isinstance(doc["traceEvents"], list)

    def test_ts_monotonically_ordered(self):
        events = _payload(chrome_trace_events(self._nested_tracer()))
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)

    def test_b_e_pairs_match_per_thread(self):
        events = _payload(chrome_trace_events(self._nested_tracer()))
        stacks: dict[int, list[str]] = {}
        for e in events:
            stack = stacks.setdefault(e["tid"], [])
            if e["ph"] == "B":
                stack.append(e["name"])
            elif e["ph"] == "E":
                assert stack, f"E for {e['name']} with no open span"
                stack.pop()
        assert all(not s for s in stacks.values())

    def test_nesting_outer_opens_first_closes_last(self):
        events = _payload(chrome_trace_events(self._nested_tracer()))
        names = [(e["ph"], e["name"]) for e in events if e["ph"] in "BE"]
        assert names.index(("B", "outer")) < names.index(("B", "inner"))
        assert names.index(("E", "inner")) < names.index(("E", "outer"))

    def test_zero_duration_span_is_complete_event(self):
        events = _payload(chrome_trace_events(self._nested_tracer()))
        (x,) = [e for e in events if e["ph"] == "X"]
        assert x["name"] == "zero"
        assert x["dur"] == 0

    def test_metadata_names_every_track(self):
        tr = self._nested_tracer()
        meta = [e for e in chrome_trace_events(tr) if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {"t", "u"}

    def test_timestamps_scaled_to_microseconds(self):
        tr = Tracer(FakeClock())
        tr.add_span("a.b", 1.5, 2.0)
        doc = to_chrome_trace(tr)
        begins = [e for e in doc["traceEvents"] if e["ph"] == "B"]
        assert begins[0]["ts"] == 1.5e6


class TestJsonlExport:
    def test_lines_are_json_and_time_ordered(self):
        tr = Tracer(FakeClock(3.0))
        tr.add_span("a.b", 5.0, 6.0, track="t")
        tr.instant("a.c", track="t")
        recs = [json.loads(line) for line in iter_jsonl_lines(tr)]
        assert [r["type"] for r in recs] == ["instant", "span"]
        assert recs[0]["t"] == 3.0
        assert recs[1]["t0"] == 5.0


class TestBulkSpans:
    def test_add_spans_records_column(self):
        from repro.obs.trace import Tracer

        tr = Tracer()
        n = tr.add_spans("runner.task.run", [0.0, 1.0, 2.0],
                         [5.0, 6.0, 7.0], cat="runner", track="fleet")
        assert n == 3
        assert tr.span_count == 3
        spans = tr.spans
        assert [s.t0 for s in spans] == [0.0, 1.0, 2.0]
        assert all(s.name == "runner.task.run" for s in spans)
        assert all(s.args == {} for s in spans)

    def test_add_spans_validates_before_recording(self):
        import pytest

        from repro.obs.trace import Tracer

        tr = Tracer()
        with pytest.raises(ValueError):
            tr.add_spans("x.y", [0.0, 5.0], [1.0, 4.0])
        assert tr.span_count == 0  # atomic: nothing landed

    def test_add_spans_honours_max_records(self):
        from repro.obs.trace import Tracer

        tr = Tracer(max_records=5)
        n = tr.add_spans("x.y", range(10), range(1, 11))
        assert n == 5
        assert tr.span_count == 5
        assert tr.dropped == 5

    def test_add_spans_disabled_is_noop(self):
        from repro.obs.trace import Tracer

        tr = Tracer(enabled=False)
        assert tr.add_spans("x.y", [0.0], [1.0]) == 0
        assert tr.span_count == 0

    def test_lazy_materialization_is_stable(self):
        from repro.obs.trace import Tracer

        tr = Tracer()
        tr.add_span("a.b", 0.0, 1.0)
        first = tr.spans
        tr.add_span("a.b", 2.0, 3.0)
        second = tr.spans
        assert len(first) == 1 and len(second) == 2
        assert first[0] is second[0]  # cache, not re-materialised
