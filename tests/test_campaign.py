"""End-to-end campaign integration tests (acquire→probe→fit→reshape→plan→run)."""


from repro.apps import (
    GrepApplication,
    GrepCostProfile,
    PosCostProfile,
    PosTaggerApplication,
)
from repro.cloud import Cloud, Workload
from repro.core import Campaign
from repro.corpus import text_400k_like
from repro.units import KB, MB


def pos_campaign(seed=101, scale=0.02, use_ebs=False):
    cloud = Cloud(seed=seed)
    wl = Workload("postag", PosTaggerApplication(), PosCostProfile())
    cat = text_400k_like(scale=scale)
    return Campaign(cloud, wl, cat, use_ebs=use_ebs, probe_repeats=3), cloud


class TestCampaignEndToEnd:
    def test_full_pipeline_produces_consistent_result(self):
        campaign, cloud = pos_campaign()
        result = campaign.run(
            deadline=120.0,
            initial_volume=100 * KB,
            unit_sizes_for=lambda v: [1 * KB, 10 * KB],
        )
        # acquisition happened
        assert result.acquisition_attempts >= 1
        # probes were measured and a unit size picked
        assert len(result.probe_sets) >= 1
        assert result.preferred.label == "orig" or isinstance(result.preferred.label, int)
        # the model fits the probe observations well
        assert result.model.r2 > 0.95
        # the reshape plan covers the catalogue exactly
        assert result.reshape_plan.total_size == campaign.catalogue.total_size
        # the plan covers every unit and the run happened
        assert result.plan.total_volume == campaign.catalogue.total_size
        assert result.report.n_instances == result.plan.n_instances
        assert result.report.makespan > 0
        # billing: probe instance + any rejected + fleet
        assert cloud.ledger.total_cost > 0

    def test_pos_prefers_original_segmentation(self):
        """Fig. 7's conclusion should fall out of the pipeline itself."""
        campaign, _ = pos_campaign(seed=103)
        result = campaign.run(
            deadline=120.0,
            initial_volume=200 * KB,
            unit_sizes_for=lambda v: [50 * KB, 200 * KB],
        )
        assert result.preferred.label == "orig"
        assert result.reshape_plan.unit_size is None

    def test_grep_prefers_merged_units(self):
        """§5.1's conclusion: grep wants big unit files."""
        cloud = Cloud(seed=104)
        wl = Workload("grep", GrepApplication(), GrepCostProfile())
        cat = text_400k_like(scale=0.05)
        campaign = Campaign(cloud, wl, cat, use_ebs=True, probe_repeats=3)
        result = campaign.run(
            deadline=60.0,
            initial_volume=2 * MB,
            unit_sizes_for=lambda v: [500 * KB, 2 * MB, 10 * MB],
        )
        assert isinstance(result.preferred.label, int)
        assert result.preferred.label >= 500 * KB
        assert result.reshape_plan.n_units < len(cat)

    def test_adjusted_deadline_plans_more_conservatively(self):
        base_c, _ = pos_campaign(seed=105)
        base = base_c.run(
            deadline=60.0, initial_volume=100 * KB,
            unit_sizes_for=lambda v: [10 * KB],
        )
        adj_c, _ = pos_campaign(seed=105)
        adj = adj_c.run(
            deadline=60.0, initial_volume=100 * KB,
            unit_sizes_for=lambda v: [10 * KB],
            use_adjusted_deadline=True,
        )
        assert adj.plan.planning_deadline < base.plan.planning_deadline
        assert adj.plan.n_instances >= base.plan.n_instances

    def test_refit_changes_model(self):
        campaign, _ = pos_campaign(seed=106, scale=0.05)
        result = campaign.run(
            deadline=120.0, initial_volume=200 * KB,
            unit_sizes_for=lambda v: [10 * KB],
            refit_samples=2, sample_volume=1 * MB,
        )
        assert result.refit_model is not None
        assert result.refit_model.b != result.model.b
        assert result.final_model is result.refit_model

    def test_summary_keys(self):
        campaign, _ = pos_campaign(seed=107)
        result = campaign.run(
            deadline=120.0, initial_volume=100 * KB,
            unit_sizes_for=lambda v: [10 * KB],
        )
        s = result.summary()
        for key in ("acquisition_attempts", "preferred_unit", "model",
                    "instances", "missed", "cost_usd"):
            assert key in s

    def test_campaign_deterministic(self):
        def run(seed):
            c, _ = pos_campaign(seed=seed)
            r = c.run(deadline=120.0, initial_volume=100 * KB,
                      unit_sizes_for=lambda v: [10 * KB])
            return (r.model.a, r.model.b, r.report.makespan)

        assert run(42) == run(42)
        assert run(42) != run(43)
