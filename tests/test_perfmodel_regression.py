"""Tests for the predictor families and fitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel.regression import (
    FitError,
    fit_affine,
    fit_all,
    fit_exponential,
    fit_linear,
    fit_power,
    fit_xlogx,
    select_best,
)


class TestAffine:
    def test_recovers_exact_line(self):
        x = np.array([1e6, 5e6, 2e7, 1e8])
        y = 0.5 + 2e-8 * x
        p = fit_affine(x, y)
        assert p.a == pytest.approx(0.5, abs=1e-9)
        assert p.b == pytest.approx(2e-8, rel=1e-9)
        assert p.r2 == pytest.approx(1.0)

    def test_inverse_roundtrip(self):
        p = fit_affine([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert p.inverse(p.predict(2.5)) == pytest.approx(2.5)

    def test_inverse_below_intercept_rejected(self):
        p = fit_affine([1.0, 2.0], [5.0, 6.0])  # a=4
        with pytest.raises(FitError):
            p.inverse(3.0)

    def test_inverse_nonincreasing_rejected(self):
        p = fit_affine([1.0, 2.0], [5.0, 4.0])
        with pytest.raises(FitError):
            p.inverse(4.5)

    def test_weighted_fit_pulls_toward_heavy_points(self):
        x = np.array([1.0, 2.0, 3.0, 10.0])
        y = np.array([1.0, 2.0, 3.0, 20.0])  # outlier at x=10
        unweighted = fit_affine(x, y)
        weighted = fit_affine(x, y, weights=[1, 1, 1, 100])
        assert abs(weighted.predict(10.0) - 20.0) < abs(unweighted.predict(10.0) - 20.0)

    def test_bad_weights(self):
        with pytest.raises(FitError):
            fit_affine([1, 2], [1, 2], weights=[1])
        with pytest.raises(FitError):
            fit_affine([1, 2], [1, 2], weights=[0, 0])

    def test_residuals_and_relative(self):
        p = fit_affine([1.0, 2.0, 3.0], [2.0, 3.9, 6.1])
        assert np.allclose(p.residuals, p.y - p.fitted)
        assert np.allclose(p.relative_residuals, p.residuals / p.fitted)

    def test_too_few_points(self):
        with pytest.raises(FitError):
            fit_affine([1.0], [1.0])

    @given(
        st.floats(min_value=0.01, max_value=10),
        st.floats(min_value=1e-9, max_value=1e-3),
    )
    @settings(max_examples=50)
    def test_exact_recovery_property(self, a, b):
        x = np.array([1e3, 1e4, 1e5, 1e6])
        y = a + b * x
        p = fit_affine(x, y)
        assert p.a == pytest.approx(a, rel=1e-6, abs=1e-9)
        assert p.b == pytest.approx(b, rel=1e-6)


class TestLinear:
    def test_recovers_slope(self):
        x = np.array([1.0, 10.0, 100.0])
        p = fit_linear(x, 3.0 * x)
        assert p.a == pytest.approx(3.0)

    def test_positive_domain_enforced(self):
        with pytest.raises(FitError):
            fit_linear([0.0, 1.0], [1.0, 2.0])

    def test_inverse(self):
        p = fit_linear([1.0, 2.0], [2.0, 4.0])
        assert p.inverse(6.0) == pytest.approx(3.0)
        with pytest.raises(FitError):
            p.inverse(0.0)


class TestPower:
    def test_recovers_params(self):
        x = np.array([1e3, 1e4, 1e5, 1e6])
        y = 2.0 * x**0.7
        p = fit_power(x, y)
        assert p.a == pytest.approx(2.0, rel=1e-6)
        assert p.b == pytest.approx(0.7, rel=1e-6)

    def test_inverse_roundtrip(self):
        p = fit_power([1.0, 10.0, 100.0], [2.0, 2.0 * 10**1.5, 2.0 * 100**1.5])
        assert p.inverse(p.predict(40.0)) == pytest.approx(40.0, rel=1e-9)

    def test_curvature_signs_match_fig2(self):
        """Fig. 2: b>1 convex (start new instances), b<1 concave (pack)."""
        x = np.array([1e3, 1e4, 1e5, 1e6])
        convex = fit_power(x, 1e-4 * x**1.5)
        concave = fit_power(x, 1e-2 * x**0.5)
        assert convex.curvature_sign() == 1
        assert concave.curvature_sign() == -1

    def test_affine_curvature_zero(self):
        p = fit_affine([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert p.curvature_sign() == 0


class TestExponential:
    def test_recovers_params(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        y = 1.5 * np.exp(0.8 * x)
        p = fit_exponential(x, y)
        assert p.a == pytest.approx(1.5, rel=1e-6)
        assert p.b == pytest.approx(0.8, rel=1e-6)

    def test_inverse(self):
        p = fit_exponential([0.0, 1.0, 2.0], [1.0, np.e, np.e**2])
        assert p.inverse(np.e ** 1.5) == pytest.approx(1.5, rel=1e-9)


class TestXLogX:
    def test_recovers_params(self):
        x = np.array([10.0, 100.0, 1e3, 1e4, 1e5])
        lx = np.log(x)
        y = np.exp(0.05 * lx**2 + 0.4 * lx)
        p = fit_xlogx(x, y)
        assert p.a == pytest.approx(0.05, rel=1e-6)
        assert p.b == pytest.approx(0.4, rel=1e-6)

    def test_inverse_roundtrip(self):
        x = np.array([10.0, 100.0, 1e3, 1e4])
        lx = np.log(x)
        y = np.exp(0.05 * lx**2 + 0.4 * lx)
        p = fit_xlogx(x, y)
        assert p.inverse(p.predict(500.0)) == pytest.approx(500.0, rel=1e-6)

    def test_needs_three_points(self):
        with pytest.raises(FitError):
            fit_xlogx([1.0, 2.0], [1.0, 2.0])


class TestFitAllSelect:
    def test_selects_correct_family_for_linear_data(self):
        x = np.array([1e3, 1e4, 1e5, 1e6, 1e7])
        y = 0.3 + 8.65e-5 * x  # the Eq. (3) shape
        best = select_best(fit_all(x, y))
        assert best.name == "affine"
        assert best.r2 > 0.999

    def test_selects_power_for_power_data(self):
        x = np.array([1e3, 1e4, 1e5, 1e6])
        rng = np.random.default_rng(0)
        y = 2e-3 * x**0.8 * np.exp(rng.normal(0, 0.01, x.size))
        best = select_best(fit_all(x, y))
        assert best.name in ("power", "xlogx")  # xlogx generalises power
        assert best.r2 > 0.99

    def test_empty_selection_rejected(self):
        with pytest.raises(FitError):
            select_best([])

    def test_fit_all_skips_impossible_families(self):
        # negative y values rule out every log-space family but not affine
        fits = fit_all([1.0, 2.0, 3.0], [-1.0, 0.0, 1.0])
        assert {f.name for f in fits} == {"affine"}
