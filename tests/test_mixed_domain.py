"""Tests for the mixed-domain corpus (the X7 substrate)."""

import numpy as np
import pytest

from repro.corpus import mixed_domain_like


class TestMixedDomain:
    def test_three_complexity_clusters(self):
        cat = mixed_domain_like(scale=2e-3)
        slens = np.array([f.stats.avg_sentence_words for f in cat])
        third = len(cat) // 3
        means = [slens[:third].mean(), slens[third:2 * third].mean(),
                 slens[2 * third:].mean()]
        # clearly separated ascending domains
        assert means[0] < means[1] - 4 < means[2] - 8

    def test_head_unrepresentative_of_average(self):
        """The property that makes head-only probing fail."""
        cat = mixed_domain_like(scale=2e-3)
        slens = np.array([f.stats.avg_sentence_words for f in cat])
        head = slens[: len(cat) // 10].mean()
        assert abs(head - slens.mean()) > 4.0

    def test_deterministic(self):
        a = mixed_domain_like(scale=1e-3, seed=5)
        b = mixed_domain_like(scale=1e-3, seed=5)
        assert [f.stats.avg_sentence_words for f in a] == \
               [f.stats.avg_sentence_words for f in b]

    def test_size_distribution_matches_text_set(self):
        cat = mixed_domain_like(scale=5e-3)
        sizes = np.array([f.size for f in cat])
        assert (sizes < 5000).mean() > 0.5  # same long-tail body

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            mixed_domain_like(scale=0)

    def test_materializable(self):
        cat = mixed_domain_like(scale=1e-4)
        f = cat[0]
        assert len(f.materialize()) == f.size
