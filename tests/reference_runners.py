"""Seed runner implementations, frozen as differential oracles.

These are the five execution loops exactly as they existed before the
policy-driven :mod:`repro.runner.core` unified them — verbatim copies,
only the imports adjusted (dataclasses come from :mod:`repro.runner`, the
shared launch/replacement helpers from :mod:`repro.resilience.launch`).
``tests/test_runner_core_differential.py`` runs each oracle and its
unified counterpart on identically-seeded clouds and asserts bit-equality
of every report field, ledger record, lease counter and fault outcome.

Do not "improve" this module: its value is that it does not change.
"""

from __future__ import annotations

import math

from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.core.planner import ProvisioningPlan
from repro.fleet.lease import LeaseManager
from repro.runner import (
    CrashEvent,
    DynamicPolicy,
    ExecutionReport,
    FailedBin,
    FaultPolicy,
    FleetTimeline,
    InstanceRun,
    ReplacementEvent,
)
from repro.units import HOUR

__all__ = [
    "execute_plan_reference",
    "execute_plan_event_driven_reference",
    "execute_with_monitoring_reference",
    "execute_fault_tolerant_reference",
    "execute_on_fleet_reference",
]


def execute_plan_reference(
    cloud: Cloud,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    service: ExecutionService | None = None,
    bill: bool = True,
    measure_retrieval: bool = False,
    launcher=None,
) -> ExecutionReport:
    """Seed ``execute_plan`` (arithmetic form), verbatim."""
    from repro.resilience.launch import launch_fleet

    svc = service or ExecutionService(cloud)
    obs = cloud.obs
    report = ExecutionReport(deadline=plan.deadline, strategy=plan.strategy)
    occupied = [(i, list(units)) for i, units in enumerate(plan.assignments) if units]
    by_index = dict(occupied)

    granted, failed = launch_fleet(cloud, [i for i, _ in occupied],
                                   launcher=launcher)
    for idx, reason in failed:
        units = by_index[idx]
        report.failures.append(FailedBin(
            bin_index=idx, reason=reason, n_units=len(units),
            volume=sum(u.size for u in units)))

    predicted_by_index = {
        idx: (plan.predicted_times[idx] if idx < len(plan.predicted_times)
              else 0.0)
        for idx, _ in occupied
    }
    if (failed and granted and launcher is not None
            and launcher.degradation is not None):
        orphans = [u for idx, _ in failed for u in by_index[idx]]
        replan = launcher.degradation.replan(
            [by_index[idx] for idx, _, _ in granted], orphans,
            predicted_times=[predicted_by_index[idx] for idx, _, _ in granted])
        for (idx, _, _), merged, t in zip(granted, replan.assignments,
                                          replan.predicted_times):
            by_index[idx] = list(merged)
            predicted_by_index[idx] = t
        report.failures = [
            FailedBin(f.bin_index, f.reason, f.n_units, f.volume,
                      absorbed=True)
            for f in report.failures
        ]
        if obs.enabled:
            obs.tracer.instant("resilience.degradation.replan",
                               cat="resilience", moved=replan.moved_units,
                               survivors=len(granted))
            obs.metrics.counter("resilience.replans").inc()

    instances = [inst for _, inst, _ in granted]
    waits = {inst.instance_id: w for _, inst, w in granted}
    if instances:
        latest_ready = max(i.ready_at + waits[i.instance_id]
                           for i in instances)
        if latest_ready > cloud.now:
            cloud.advance(latest_ready - cloud.now)
        for inst in instances:
            inst.mark_running(cloud.now)
        report.rate = instances[0].itype.hourly_rate

    runs: list[InstanceRun] = []
    work_start = cloud.now
    for idx, inst, wait in granted:
        units = by_index[idx]
        duration = svc.run(inst, units, workload, advance_clock=False)
        predicted = predicted_by_index[idx]
        runs.append(InstanceRun(
            instance_id=inst.instance_id,
            n_units=len(units),
            volume=sum(u.size for u in units),
            boot_delay=wait + inst.boot_delay,
            duration=duration,
            predicted=predicted,
        ))
        if obs.enabled:
            obs.tracer.add_span("runner.task.run", work_start,
                                work_start + duration, cat="runner",
                                track=inst.instance_id, bin=idx,
                                n_units=len(units), predicted=predicted,
                                strategy=plan.strategy)
            obs.metrics.counter("runner.tasks.completed",
                                strategy=plan.strategy).inc()
            obs.metrics.histogram("runner.task.seconds").observe(duration)
        if bill:
            cloud.ledger.record(inst.instance_id, inst.itype.name,
                                work_start, work_start + duration,
                                inst.itype.hourly_rate)
    report.runs = runs
    if runs:
        cloud.advance(max(r.duration for r in runs))
    for inst in instances:
        inst.terminate(cloud.now)
    if obs.enabled:
        obs.metrics.gauge("runner.deadline.margin", strategy=plan.strategy
                          ).set(report.deadline - report.makespan)
        if report.n_missed:
            obs.metrics.counter("runner.deadline.misses",
                                strategy=plan.strategy).inc(report.n_missed)

    if measure_retrieval and runs:
        meta_by_run: list[tuple[str, int]] = []
        for idx, inst, _ in granted:
            for j, unit in enumerate(by_index[idx]):
                key = f"results/{plan.strategy}/{inst.instance_id}/{j}"
                cloud.s3.put(key, max(1, unit.size // 100))
                meta_by_run.append((key, unit.size))
        rng = cloud.rng.fork(f"retrieval.{plan.strategy}.{len(meta_by_run)}")
        report.retrieval_seconds = cloud.s3.retrieval_time(
            [k for k, _ in meta_by_run], rng)
    return report


def execute_plan_event_driven_reference(
    cloud: Cloud,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    service: ExecutionService | None = None,
    bill: bool = True,
) -> tuple[ExecutionReport, FleetTimeline]:
    """Seed ``execute_plan_event_driven``, verbatim."""
    svc = service or ExecutionService(cloud)
    report = ExecutionReport(deadline=plan.deadline, strategy=plan.strategy)
    timeline = FleetTimeline()
    occupied = [(i, units) for i, units in enumerate(plan.assignments) if units]

    instances = [cloud.launch_instance(wait=False) for _ in occupied]
    if not instances:
        return report, timeline
    report.rate = instances[0].itype.hourly_rate

    engine = cloud.engine
    state = {"working": 0, "completed": 0}
    runs_by_index: dict[int, InstanceRun] = {}

    fleet_ready = max(i.ready_at for i in instances)

    def start_fleet() -> None:
        work_start = engine.now
        for inst, (idx, units) in zip(instances, occupied):
            inst.mark_running(engine.now)
            duration = svc.run(inst, units, workload, advance_clock=False)
            predicted = (plan.predicted_times[idx]
                         if idx < len(plan.predicted_times) else 0.0)
            run = InstanceRun(
                instance_id=inst.instance_id,
                n_units=len(units),
                volume=sum(u.size for u in units),
                boot_delay=inst.boot_delay,
                duration=duration,
                predicted=predicted,
            )
            runs_by_index[idx] = run
            state["working"] += 1
            if bill:
                cloud.ledger.record(inst.instance_id, inst.itype.name,
                                    work_start, work_start + duration,
                                    inst.itype.hourly_rate)

            def complete(inst=inst, run=run) -> None:
                state["working"] -= 1
                state["completed"] += 1
                timeline.record(engine.now, state["working"], state["completed"])
                inst.terminate(engine.now)

            engine.schedule_at(work_start + duration, complete,
                               label=f"complete:{inst.instance_id}")

    engine.schedule_at(fleet_ready, start_fleet, label="fleet-ready")
    engine.run()

    report.runs = [runs_by_index[idx] for idx, _ in occupied]
    return report, timeline


def _split_point(units: list, fraction: float) -> int:
    total = sum(u.size for u in units)
    if total == 0:
        return len(units)
    acc = 0
    for i, u in enumerate(units):
        acc += u.size
        if acc >= fraction * total:
            return i + 1
    return len(units)


def execute_with_monitoring_reference(
    cloud: Cloud,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    policy: DynamicPolicy | None = None,
    service: ExecutionService | None = None,
    lease_manager: "LeaseManager | None" = None,
    launcher=None,
) -> tuple[ExecutionReport, list[ReplacementEvent]]:
    """Seed ``execute_with_monitoring``, verbatim."""
    from repro.chaos import ChaosError
    from repro.resilience.launch import CapacityError, acquire_replacement, launch_fleet

    policy = policy or DynamicPolicy()
    svc = service or ExecutionService(cloud)
    obs = cloud.obs
    report = ExecutionReport(deadline=plan.deadline, strategy=f"{plan.strategy}+dynamic")
    events: list[ReplacementEvent] = []

    occupied = [(i, list(units)) for i, units in enumerate(plan.assignments) if units]
    by_index = dict(occupied)
    granted, failed_launches = launch_fleet(cloud, [i for i, _ in occupied],
                                            launcher=launcher)
    for idx, reason in failed_launches:
        units = by_index[idx]
        report.failures.append(FailedBin(
            bin_index=idx, reason=reason, n_units=len(units),
            volume=sum(u.size for u in units)))
    instances = [inst for _, inst, _ in granted]
    if instances:
        latest = max(inst.ready_at + wait for _, inst, wait in granted)
        if latest > cloud.now:
            cloud.advance(latest - cloud.now)
        for inst in instances:
            inst.mark_running(cloud.now)
        report.rate = instances[0].itype.hourly_rate

    work_start = cloud.now
    runs: list[InstanceRun] = []
    for idx, inst, launch_wait in granted:
        units = by_index[idx]
        predicted = plan.predicted_times[idx] if idx < len(plan.predicted_times) else 0.0
        split = _split_point(units, policy.probe_fraction)
        probe, rest = units[:split], units[split:]
        probe_volume = sum(u.size for u in probe)
        volume = sum(u.size for u in units)

        t_probe = svc.run(inst, probe, workload, advance_clock=False)
        expected_probe = predicted * (probe_volume / volume) if volume else t_probe
        effective = max(t_probe - policy.setup_allowance, 1e-9)
        ratio = expected_probe / effective
        if obs.enabled:
            obs.tracer.add_span("runner.probe.chunk", work_start,
                                work_start + t_probe, cat="runner",
                                track=inst.instance_id, bin=idx,
                                observed_ratio=round(ratio, 4))
            obs.metrics.histogram("runner.probe.ratio",
                                  buckets=(0.25, 0.5, 0.7, 0.9, 1.0, 1.2, 2.0)
                                  ).observe(ratio)

        duration = t_probe
        active = inst
        active_lease = None
        active_since = 0.0
        replacements = 0
        if (
            rest
            and ratio < policy.slow_threshold
            and replacements < policy.max_replacements_per_bin
        ):
            if policy.replace_at == "hour-boundary":
                boundary = HOUR * math.ceil(max(duration, 1.0) / HOUR)
                window = boundary - duration
                straggler_rate = probe_volume / max(t_probe, 1e-9)
                budget = straggler_rate * window
                done = 0
                acc = 0
                for u in rest:
                    if acc + u.size > budget:
                        break
                    acc += u.size
                    done += 1
                if done:
                    duration += svc.run(active, rest[:done], workload,
                                        advance_clock=False)
                    rest = rest[done:]
            rest_volume = sum(u.size for u in rest)
            est_rest = (predicted * (rest_volume / volume)
                        if volume else t_probe)
            if launcher is not None:
                launcher.note_slow_zone(active.zone.name)
            replacement = None
            try:
                replacement, lease, penalty = acquire_replacement(
                    cloud, at=work_start + duration, est_seconds=est_rest,
                    lease_manager=lease_manager, launcher=launcher,
                    tenant="dynamic", campaign=f"bin-{idx}",
                    boot_attach_penalty=policy.replacement_penalty,
                    warm_attach_penalty=policy.attach_penalty)
            except (ChaosError, CapacityError):
                if obs.enabled:
                    obs.tracer.instant("runner.replacement.unavailable",
                                       cat="runner",
                                       track=active.instance_id, bin=idx)
                    obs.metrics.counter(
                        "runner.replacements.unavailable").inc()
            if replacement is not None:
                cloud.ledger.record(active.instance_id, active.itype.name,
                                    work_start, work_start + duration,
                                    active.itype.hourly_rate)
                events.append(ReplacementEvent(
                    bin_index=idx,
                    old_instance=active.instance_id,
                    new_instance=replacement.instance_id,
                    at_progress=(volume - sum(u.size for u in rest)) / volume
                    if volume else 1.0,
                    observed_ratio=ratio,
                ))
                if obs.enabled:
                    obs.tracer.instant("runner.straggler.replaced",
                                       cat="runner",
                                       track=active.instance_id, bin=idx,
                                       replacement=replacement.instance_id,
                                       source=lease.source if lease else "boot",
                                       observed_ratio=round(ratio, 4))
                    obs.tracer.add_span(
                        "runner.replacement.penalty", work_start + duration,
                        work_start + duration + penalty,
                        cat="runner", track=replacement.instance_id, bin=idx)
                    obs.metrics.counter("runner.replacements",
                                        mode=policy.replace_at,
                                        source=lease.source if lease else "boot",
                                        ).inc()
                active.terminate(max(cloud.now, work_start + duration))
                duration += penalty
                active = replacement
                active_lease = lease
                active_since = duration
                replacements += 1

        if rest:
            t_rest_start = duration
            duration += svc.run(active, rest, workload, advance_clock=False)
            if obs.enabled:
                obs.tracer.add_span("runner.task.run",
                                    work_start + t_rest_start,
                                    work_start + duration, cat="runner",
                                    track=active.instance_id, bin=idx,
                                    n_units=len(rest))

        runs.append(InstanceRun(
            instance_id=active.instance_id,
            n_units=len(units),
            volume=volume,
            boot_delay=launch_wait + active.boot_delay,
            duration=duration,
            predicted=predicted,
        ))
        if active_lease is not None:
            lease_manager.release(active_lease, work_start + duration)
        else:
            cloud.ledger.record(active.instance_id, active.itype.name,
                                work_start + active_since,
                                work_start + duration,
                                active.itype.hourly_rate)

    report.runs = runs
    if runs:
        cloud.advance(max(r.duration for r in runs))
    for inst in cloud.running_instances():
        if lease_manager is not None and lease_manager.owns(inst.instance_id):
            continue
        inst.terminate(cloud.now)
    if obs.enabled:
        obs.metrics.gauge("runner.deadline.margin", strategy=report.strategy
                          ).set(report.deadline - report.makespan)
    return report, events


class _BinState:
    def __init__(self) -> None:
        self.elapsed = 0.0
        self.crashes = 0


def execute_fault_tolerant_reference(
    cloud: Cloud,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    policy: FaultPolicy | None = None,
    service: ExecutionService | None = None,
    launcher=None,
) -> tuple[ExecutionReport, list[CrashEvent]]:
    """Seed ``execute_fault_tolerant``, verbatim."""
    from repro.chaos import ChaosError
    from repro.resilience.launch import CapacityError, acquire_replacement, launch_fleet

    policy = policy or FaultPolicy()
    svc = service or ExecutionService(cloud)
    obs = cloud.obs
    report = ExecutionReport(deadline=plan.deadline,
                             strategy=f"{plan.strategy}+fault-tolerant")
    events: list[CrashEvent] = []

    occupied = [(i, list(units)) for i, units in enumerate(plan.assignments) if units]
    by_index = dict(occupied)
    granted, failed_launches = launch_fleet(cloud, [i for i, _ in occupied],
                                            launcher=launcher)
    for idx, reason in failed_launches:
        units = by_index[idx]
        report.failures.append(FailedBin(
            bin_index=idx, reason=reason, n_units=len(units),
            volume=sum(u.size for u in units)))
    instances = [inst for _, inst, _ in granted]
    if instances:
        latest = max(inst.ready_at + wait for _, inst, wait in granted)
        if latest > cloud.now:
            cloud.advance(latest - cloud.now)
        for inst in instances:
            inst.mark_running(cloud.now)
        report.rate = instances[0].itype.hourly_rate
    work_start = cloud.now

    runs: list[InstanceRun] = []
    for idx, inst, launch_wait in granted:
        units = by_index[idx]
        state = _BinState()
        active = inst
        active_started = 0.0
        bin_billed_hours = 0
        failed_bin: FailedBin | None = None
        batches = [units[i:i + policy.batch_units]
                   for i in range(0, len(units), policy.batch_units)]
        b = 0
        while b < len(batches):
            batch = batches[b]
            t_batch = svc.run(active, batch, workload, advance_clock=False)
            ttf = active.time_to_failure
            survives = (ttf is None
                        or state.elapsed - active_started + t_batch <= ttf)
            if survives:
                if obs.enabled:
                    obs.tracer.add_span(
                        "runner.batch.run", work_start + state.elapsed,
                        work_start + state.elapsed + t_batch, cat="runner",
                        track=active.instance_id, bin=idx, batch=b,
                        units=len(batch))
                    obs.metrics.counter("runner.batches.completed").inc()
                state.elapsed += t_batch
                b += 1
                continue
            state.crashes += 1
            crash_elapsed = active_started + (ttf or 0.0)
            if state.crashes > policy.max_crashes_per_bin:
                if policy.on_exhaustion == "raise":
                    raise RuntimeError(
                        f"bin {idx}: more than {policy.max_crashes_per_bin} "
                        "crashes; the cloud is unusable")
                active.fail(cloud.now)
                rec = cloud.ledger.record(active.instance_id,
                                          active.itype.name,
                                          work_start + active_started,
                                          work_start + crash_elapsed,
                                          active.itype.hourly_rate)
                bin_billed_hours += rec.hours
                completed = sum(len(batches[i]) for i in range(b))
                failed_bin = FailedBin(
                    bin_index=idx, reason="crash-exhausted",
                    n_units=len(units),
                    volume=sum(u.size for u in units),
                    completed_units=completed,
                    elapsed=crash_elapsed + policy.detection_timeout,
                    billed_hours=bin_billed_hours)
                if obs.enabled:
                    obs.tracer.instant("runner.bin.failed", cat="runner",
                                       track=active.instance_id, bin=idx,
                                       crashes=state.crashes,
                                       completed_units=completed)
                    obs.metrics.counter("runner.bins.failed",
                                        reason="crash-exhausted").inc()
                break
            events.append(CrashEvent(
                bin_index=idx,
                instance_id=active.instance_id,
                at_elapsed=crash_elapsed,
                lost_batch_units=len(batch),
            ))
            if obs.enabled:
                obs.tracer.instant("runner.crash.detected", cat="runner",
                                   track=active.instance_id, bin=idx,
                                   lost_units=len(batch))
                obs.tracer.add_span(
                    "runner.crash.recovery", work_start + crash_elapsed,
                    work_start + crash_elapsed + policy.detection_timeout
                    + policy.replacement_penalty, cat="runner",
                    track=active.instance_id, bin=idx)
                obs.metrics.counter("runner.crashes.detected").inc()
                obs.metrics.counter("runner.units.requeued").inc(len(batch))
            state.elapsed = crash_elapsed + policy.detection_timeout
            active.fail(cloud.now)
            rec = cloud.ledger.record(active.instance_id, active.itype.name,
                                      work_start + active_started,
                                      work_start + crash_elapsed,
                                      active.itype.hourly_rate)
            bin_billed_hours += rec.hours
            try:
                active, _, penalty = acquire_replacement(
                    cloud, at=work_start + state.elapsed, launcher=launcher,
                    boot_attach_penalty=policy.replacement_penalty)
            except (ChaosError, CapacityError) as e:
                completed = sum(len(batches[i]) for i in range(b))
                failed_bin = FailedBin(
                    bin_index=idx,
                    reason=f"replacement-failed: {e}",
                    n_units=len(units),
                    volume=sum(u.size for u in units),
                    completed_units=completed,
                    elapsed=state.elapsed,
                    billed_hours=bin_billed_hours)
                if obs.enabled:
                    obs.metrics.counter("runner.bins.failed",
                                        reason="replacement-failed").inc()
                break
            state.elapsed += penalty
            active_started = state.elapsed

        if failed_bin is not None:
            report.failures.append(failed_bin)
            continue
        runs.append(InstanceRun(
            instance_id=active.instance_id,
            n_units=len(units),
            volume=sum(u.size for u in units),
            boot_delay=launch_wait + inst.boot_delay,
            duration=state.elapsed,
            predicted=plan.predicted_times[idx]
            if idx < len(plan.predicted_times) else 0.0,
        ))
        cloud.ledger.record(active.instance_id, active.itype.name,
                            work_start, work_start + state.elapsed,
                            active.itype.hourly_rate)

    report.runs = runs
    if runs:
        cloud.advance(max(r.duration for r in runs))
    for inst in cloud.running_instances():
        inst.terminate(cloud.now)
    if obs.enabled:
        obs.metrics.gauge("runner.deadline.margin", strategy=report.strategy
                          ).set(report.deadline - report.makespan)
    return report, events


def execute_on_fleet_reference(
    leases: LeaseManager,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    tenant: str = "default",
    campaign: str | None = None,
    service: ExecutionService | None = None,
) -> ExecutionReport:
    """Seed ``execute_on_fleet``, verbatim."""
    cloud: Cloud = leases.cloud
    svc = service or ExecutionService(cloud)
    obs = cloud.obs
    label = campaign or f"{plan.strategy}-campaign"
    report = ExecutionReport(deadline=plan.deadline,
                             strategy=f"{plan.strategy}+fleet")
    t0 = cloud.now
    runs: list[InstanceRun] = []
    ends: list[float] = []
    for idx, units in enumerate(plan.assignments):
        if not units:
            continue
        predicted = (plan.predicted_times[idx]
                     if idx < len(plan.predicted_times) else 0.0)
        lease = leases.acquire(tenant, est_seconds=predicted, at=t0,
                               campaign=label)
        duration = svc.run(lease.instance, units, workload,
                           advance_clock=False)
        end = lease.ready_at + duration
        leases.release(lease, end)
        plan.annotate_lease(idx, lease.source, lease.lease_id)
        report.rate = lease.instance.itype.hourly_rate
        runs.append(InstanceRun(
            instance_id=lease.instance.instance_id,
            n_units=len(units),
            volume=sum(u.size for u in units),
            boot_delay=lease.ready_at - t0,
            duration=duration,
            predicted=predicted,
        ))
        ends.append(end)
        if obs.enabled:
            obs.tracer.add_span("runner.task.run", lease.ready_at, end,
                                cat="runner", track=lease.instance.instance_id,
                                bin=idx, n_units=len(units),
                                predicted=predicted, tenant=tenant,
                                source=lease.source,
                                strategy=report.strategy)
            obs.metrics.counter("runner.tasks.completed",
                                strategy=report.strategy).inc()
    report.runs = runs
    if ends:
        horizon = max(ends)
        if horizon > cloud.now:
            cloud.advance(horizon - cloud.now)
    if obs.enabled:
        obs.metrics.gauge("runner.deadline.margin", strategy=report.strategy
                          ).set(report.deadline - report.makespan)
        if report.n_missed:
            obs.metrics.counter("runner.deadline.misses",
                                strategy=report.strategy).inc(report.n_missed)
    return report
