"""Pre-broker acquisition policies, frozen as differential oracles.

Verbatim copies of ``FleetLaunchAcquisition``, ``LeaseAcquisition``,
``SpotAcquisition`` and ``SpotProgress`` exactly as they existed before
the :mod:`repro.capacity` broker layer rewrote them as thin
:class:`~repro.capacity.BrokerAcquisition` configurations — only the
imports are adjusted.  ``tests/test_capacity_differential.py`` wires
these into :class:`~repro.runner.core.ExecutionCore` and asserts bit
equality of reports, ledgers, lease stats, spot stats and engine clocks
against the broker-routed public entry points, across seeds × scenarios.

Do not "improve" this module: its value is that it does not change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.cloud.cluster import Cloud
from repro.cloud.service import ExecutionService, Workload
from repro.cloud.spot import TWO_MINUTE_WARNING, SpotMarketBoard
from repro.cloud.types import AvailabilityZone, InstanceType
from repro.core.planner import ProvisioningPlan
from repro.resilience.spot import FallbackDecision, SpotFallbackPolicy, SpotLadder
from repro.runner.core import (
    BinGrant,
    BinOutcome,
    CoreContext,
    ExecutionCore,
)
from repro.runner.execute import FailedBin, InstanceRun
from repro.runner.spot import (
    SpotBinState,
    SpotCompletion,
    SpotRunResult,
    SpotRunStats,
)
from repro.units import billed_hours

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos import FaultInjector
    from repro.cloud.instance import Instance
    from repro.fleet.lease import LeaseManager
    from repro.resilience.launch import ResilientLauncher

__all__ = [
    "ReferenceFleetLaunchAcquisition",
    "ReferenceLeaseAcquisition",
    "ReferenceSpotAcquisition",
    "ReferenceSpotProgress",
    "execute_plan_spot_reference",
]


class ReferenceFleetLaunchAcquisition:
    """Seed ``FleetLaunchAcquisition``, verbatim."""

    def __init__(self, *, launcher: "ResilientLauncher | None" = None,
                 lease_manager: "LeaseManager | None" = None,
                 on_fault: str = "fail-bin",
                 replacement_tenant: str = "runner") -> None:
        if on_fault not in ("fail-bin", "raise"):
            raise ValueError("on_fault must be 'fail-bin' or 'raise'")
        self.launcher = launcher
        self.lease_manager = lease_manager
        self.on_fault = on_fault
        self.replacement_tenant = replacement_tenant

    def acquire_fleet(self, ctx: CoreContext) -> None:
        from repro.resilience.launch import launch_fleet

        if self.on_fault == "raise":
            granted = [(idx, ctx.cloud.launch_instance(wait=False), 0.0)
                       for idx, _ in ctx.occupied]
            failed: list[tuple[int, str]] = []
        else:
            granted, failed = launch_fleet(
                ctx.cloud, [i for i, _ in ctx.occupied], launcher=self.launcher)
        for idx, reason in failed:
            units = ctx.by_index[idx]
            ctx.report.failures.append(FailedBin(
                bin_index=idx, reason=reason, n_units=len(units),
                volume=sum(u.size for u in units)))
        ctx.grants = [
            BinGrant(index=idx, units=ctx.by_index[idx], instance=inst,
                     launch_wait=wait, boot_delay=wait + inst.boot_delay,
                     predicted=ctx.predicted[idx])
            for idx, inst, wait in granted
        ]

    def work_start_time(self, ctx: CoreContext) -> float | None:
        if not ctx.grants:
            return None
        return max(g.instance.ready_at + g.launch_wait for g in ctx.grants)

    def on_work_start(self, ctx: CoreContext) -> None:
        for g in ctx.grants:
            g.instance.mark_running(ctx.engine.now)
            g.work_start = ctx.work_start
        ctx.report.rate = ctx.grants[0].instance.itype.hourly_rate

    def grants(self, ctx: CoreContext) -> Iterator[BinGrant]:
        yield from ctx.grants

    def replacement(self, ctx: CoreContext, *, at: float,
                    est_seconds: float = 0.0, bin_index: int | None = None,
                    boot_attach_penalty: float = 180.0,
                    warm_attach_penalty: float = 30.0):
        from repro.resilience.launch import acquire_replacement

        campaign = None if bin_index is None else f"bin-{bin_index}"
        return acquire_replacement(
            ctx.cloud, at=at, est_seconds=est_seconds,
            lease_manager=self.lease_manager, launcher=self.launcher,
            tenant=self.replacement_tenant, campaign=campaign,
            boot_attach_penalty=boot_attach_penalty,
            warm_attach_penalty=warm_attach_penalty)


class ReferenceLeaseAcquisition:
    """Seed ``LeaseAcquisition``, verbatim."""

    def __init__(self, manager: "LeaseManager", *, tenant: str = "default",
                 campaign: str | None = None) -> None:
        self.manager = manager
        self.tenant = tenant
        self.campaign = campaign

    def acquire_fleet(self, ctx: CoreContext) -> None:
        pass  # leases are drawn per bin, inside grants()

    def work_start_time(self, ctx: CoreContext) -> float | None:
        return ctx.cloud.now if ctx.occupied else None

    def on_work_start(self, ctx: CoreContext) -> None:
        pass  # the manager marks cold boots RUNNING itself

    def grants(self, ctx: CoreContext) -> Iterator[BinGrant]:
        t0 = ctx.work_start
        for idx, units in ctx.occupied:
            predicted = ctx.predicted[idx]
            lease = self.manager.acquire(self.tenant, est_seconds=predicted,
                                         at=t0, campaign=self.campaign)
            yield BinGrant(
                index=idx, units=units, instance=lease.instance,
                boot_delay=lease.ready_at - t0, work_start=lease.ready_at,
                predicted=predicted, lease=lease,
                span_extra={"tenant": self.tenant, "source": lease.source})

    def replacement(self, ctx: CoreContext, *, at: float,
                    est_seconds: float = 0.0, bin_index: int | None = None,
                    boot_attach_penalty: float = 180.0,
                    warm_attach_penalty: float = 30.0):
        from repro.resilience.launch import acquire_replacement

        campaign = self.campaign if bin_index is None else f"bin-{bin_index}"
        return acquire_replacement(
            ctx.cloud, at=at, est_seconds=est_seconds,
            lease_manager=self.manager, tenant=self.tenant, campaign=campaign,
            boot_attach_penalty=boot_attach_penalty,
            warm_attach_penalty=warm_attach_penalty)


def _zone_of(cloud: Cloud, name: str) -> AvailabilityZone:
    for z in cloud.region.zones:
        if z.name == name:
            return z
    raise KeyError(f"no zone {name!r} in region {cloud.region.name}")


class ReferenceSpotAcquisition:
    """Seed ``SpotAcquisition``, verbatim."""

    def __init__(self, board: SpotMarketBoard, *, ladder: SpotLadder,
                 stats: SpotRunStats | None = None,
                 launcher: "ResilientLauncher | None" = None) -> None:
        self.board = board
        self.ladder = ladder
        self.stats = stats if stats is not None else SpotRunStats()
        self.launcher = launcher
        self._states: dict[int, SpotBinState] = {}

    def bin_state(self, index: int) -> SpotBinState:
        return self._states[index]

    def acquire_fleet(self, ctx: CoreContext) -> None:
        from repro.chaos import ChaosError

        p = self.ladder.policy
        now = ctx.cloud.now
        grants: list[BinGrant] = []
        for idx, units in ctx.occupied:
            predicted = ctx.predicted[idx]
            state, inst = None, None
            if self.ladder.should_escalate(predicted, ctx.plan.deadline):
                state, inst = self._launch_on_demand(ctx, idx, units,
                                                     reason="preemptive-start")
            else:
                zone = self.ladder.initial_zone(now)
                if zone is None:
                    if p.escalate:
                        state, inst = self._launch_on_demand(
                            ctx, idx, units, reason="unaffordable-start")
                else:
                    try:
                        inst = ctx.cloud.launch_instance(
                            p.itype, _zone_of(ctx.cloud, zone), wait=False)
                        state = SpotBinState(zone=zone, itype=p.itype)
                    except ChaosError as e:
                        if p.escalate:
                            state, inst = self._launch_on_demand(
                                ctx, idx, units, reason=f"launch-rejected: {e}")
            if state is None or inst is None:
                ctx.report.failures.append(FailedBin(
                    bin_index=idx, reason="spot-unavailable",
                    n_units=len(units), volume=sum(u.size for u in units)))
                if ctx.obs.enabled:
                    ctx.obs.metrics.counter("runner.bins.failed",
                                            reason="spot-unavailable").inc()
                continue
            self._states[idx] = state
            grants.append(BinGrant(
                index=idx, units=units, instance=inst,
                boot_delay=inst.boot_delay, predicted=predicted,
                span_extra={"market": "on-demand" if state.on_demand
                            else "spot", "zone": state.zone}))
        ctx.grants = grants

    def _launch_on_demand(self, ctx: CoreContext, idx: int, units: list, *,
                          reason: str) -> tuple[SpotBinState | None,
                                                "Instance | None"]:
        from repro.chaos import ChaosError

        p = self.ladder.policy
        try:
            inst = ctx.cloud.launch_instance(p.itype, wait=False)
        except ChaosError:
            return None, None
        self.stats.escalations += 1
        self.stats.preemptive_escalations += 1
        if ctx.obs.enabled:
            ctx.obs.metrics.counter("runner.spot.escalations",
                                    reason=reason.split(":")[0]).inc()
        return SpotBinState(zone=inst.zone.name, itype=p.itype,
                            on_demand=True), inst

    def work_start_time(self, ctx: CoreContext) -> float | None:
        if not ctx.grants:
            return None
        return max(g.instance.ready_at for g in ctx.grants)

    def on_work_start(self, ctx: CoreContext) -> None:
        for g in ctx.grants:
            g.instance.mark_running(ctx.engine.now)
            g.work_start = ctx.work_start
        ctx.report.rate = self.ladder.policy.itype.hourly_rate

    def grants(self, ctx: CoreContext) -> Iterator[BinGrant]:
        yield from ctx.grants

    def replacement(self, ctx: CoreContext, *, at: float,
                    est_seconds: float = 0.0, bin_index: int | None = None,
                    boot_attach_penalty: float = 180.0,
                    warm_attach_penalty: float = 30.0):
        from repro.resilience.launch import acquire_replacement

        campaign = None if bin_index is None else f"bin-{bin_index}"
        return acquire_replacement(
            ctx.cloud, at=at, est_seconds=est_seconds,
            launcher=self.launcher, tenant="spot", campaign=campaign,
            boot_attach_penalty=boot_attach_penalty,
            warm_attach_penalty=warm_attach_penalty)


class ReferenceSpotProgress:
    """Seed ``SpotProgress``, verbatim (direct on-demand escalation)."""

    def __init__(self, board: SpotMarketBoard, ladder: SpotLadder, *,
                 acquisition: ReferenceSpotAcquisition,
                 chaos: "FaultInjector | None" = None,
                 stats: SpotRunStats | None = None) -> None:
        self.board = board
        self.ladder = ladder
        self.acquisition = acquisition
        self.chaos = chaos
        self.stats = stats if stats is not None else SpotRunStats()

    def _measure(self, ctx: CoreContext, active: "Instance",
                 units: list) -> float:
        p = self.ladder.policy
        t = ctx.svc.run(active, units, ctx.workload, advance_clock=False)
        return t / (active.itype.compute_units / p.itype.compute_units)

    def _next_interruption(self, seg_start: float, zone: str,
                           itype: InstanceType) -> tuple[float, str] | None:
        p = self.ladder.policy
        hits: list[tuple[float, str]] = []
        crossing = self.board.next_crossing(zone, after=seg_start, bid=p.bid,
                                            itype=itype)
        if crossing is not None:
            hits.append((crossing.at, "market"))
        if self.chaos is not None and self.chaos.has_spot_interruptions:
            at = self.chaos.next_spot_interruption(zone, seg_start)
            if at is not None:
                hits.append((at, "trace"))
        return min(hits) if hits else None

    def _bill_spot(self, ctx: CoreContext, active: "Instance", zone: str,
                   itype: InstanceType, start: float, end: float, *,
                   interrupted: bool) -> None:
        if not ctx.bill:
            return
        for s, e, price in self.board.bill_segment(zone, start, end,
                                                   itype=itype,
                                                   interrupted=interrupted):
            rec = ctx.cloud.ledger.record(active.instance_id, itype.name,
                                          s, e, price)
            self.stats.spot_cost += rec.cost

    def _bill_on_demand(self, ctx: CoreContext, active: "Instance",
                        itype: InstanceType, start: float,
                        end: float) -> None:
        if not ctx.bill:
            return
        rec = ctx.cloud.ledger.record(active.instance_id, itype.name,
                                      start, end, itype.hourly_rate)
        self.stats.on_demand_cost += rec.cost

    def execute(self, ctx: CoreContext, grant: BinGrant) -> BinOutcome:
        from repro.chaos import ChaosError

        p = self.ladder.policy
        obs = ctx.obs
        stats = self.stats
        state = self.acquisition.bin_state(grant.index)
        idx, units = grant.index, grant.units
        volume = sum(u.size for u in units)
        work_start = grant.work_start
        deadline = ctx.plan.deadline

        active = grant.instance
        zone, itype, on_demand = state.zone, state.itype, state.on_demand
        remaining = 1.0
        elapsed = 0.0
        interruptions = 0
        failed: FailedBin | None = None
        first_full: float | None = None

        while True:
            seg_start = work_start + elapsed
            t_full = self._measure(ctx, active, units)
            if first_full is None:
                first_full = t_full
            seg_need = remaining * t_full
            hit = (None if on_demand
                   else self._next_interruption(seg_start, zone, itype))
            if hit is None or seg_start + seg_need <= hit[0]:
                end = seg_start + seg_need
                if on_demand:
                    self._bill_on_demand(ctx, active, itype, seg_start, end)
                else:
                    self._bill_spot(ctx, active, zone, itype, seg_start, end,
                                    interrupted=False)
                if obs.enabled:
                    obs.tracer.add_span(
                        "runner.spot.segment", seg_start, end, cat="runner",
                        track=active.instance_id, bin=idx,
                        market="on-demand" if on_demand else "spot",
                        zone=zone)
                    obs.metrics.counter("runner.tasks.completed",
                                        strategy=ctx.report.strategy).inc()
                    obs.metrics.histogram("runner.task.seconds"
                                          ).observe(seg_need)
                active.terminate(end)
                elapsed += seg_need
                break

            at, source = hit
            warning_at = max(seg_start, at - TWO_MINUTE_WARNING)
            interruptions += 1
            stats.interruptions += 1
            ran = at - seg_start
            if p.checkpoint:
                preserved = min(seg_need, max(0.0, warning_at - seg_start))
                remaining = max(0.0, remaining - preserved / t_full)
                stats.saved_seconds += preserved
                lost = min(seg_need, ran) - preserved
            else:
                preserved = 0.0
                remaining = 1.0
                lost = min(seg_need, ran)
            stats.lost_seconds += lost
            self._bill_spot(ctx, active, zone, itype, seg_start, at,
                            interrupted=True)
            if self.chaos is not None:
                self.chaos.record_spot_interruption(at, zone, detail=source)
            if obs.enabled:
                obs.tracer.add_span("runner.spot.segment", seg_start, at,
                                    cat="runner", track=active.instance_id,
                                    bin=idx, market="spot", zone=zone,
                                    interrupted=source)
                obs.tracer.instant("runner.spot.warning", cat="runner",
                                   track=active.instance_id, bin=idx,
                                   at=round(warning_at, 1))
                obs.tracer.instant("runner.spot.interruption", cat="runner",
                                   track=active.instance_id, bin=idx,
                                   zone=zone, source=source,
                                   at=round(at, 1))
                obs.metrics.counter("runner.spot.interruptions",
                                    source=source).inc()
                obs.metrics.histogram("runner.spot.saved_seconds"
                                      ).observe(preserved)
                obs.metrics.histogram("runner.spot.lost_seconds"
                                      ).observe(lost)
            active.terminate(at)
            elapsed = at - work_start

            if interruptions >= p.max_interruptions and not p.escalate:
                failed = FailedBin(
                    bin_index=idx, reason="spot-interruptions-exhausted",
                    n_units=len(units), volume=volume, elapsed=elapsed)
                break

            est_remaining = remaining * max(grant.predicted, t_full)
            decision = self.ladder.decide(
                now=at, zone=zone, remaining_predicted=est_remaining,
                deadline_remaining=deadline - elapsed)
            if (interruptions >= p.max_interruptions
                    and decision.rung not in ("on-demand", "give-up")):
                decision = FallbackDecision("on-demand", itype=p.itype,
                                            resume_at=at)
            if decision.rung == "give-up":
                failed = FailedBin(
                    bin_index=idx, reason="spot-unaffordable",
                    n_units=len(units), volume=volume, elapsed=elapsed)
                break
            self._note_rung(obs, stats, decision)

            if decision.rung == "on-demand":
                on_demand = True
                itype = decision.itype or p.itype
                try:
                    nxt = ctx.cloud.launch_instance(itype, wait=False)
                except ChaosError as e:
                    failed = FailedBin(
                        bin_index=idx, reason=f"on-demand-refused: {e}",
                        n_units=len(units), volume=volume, elapsed=elapsed)
                    break
                zone = nxt.zone.name
            else:
                zone = decision.zone or zone
                itype = decision.itype or p.itype
                try:
                    nxt = ctx.cloud.launch_instance(
                        itype, _zone_of(ctx.cloud, zone), wait=False)
                except ChaosError as e:
                    if not p.escalate:
                        failed = FailedBin(
                            bin_index=idx, reason=f"launch-rejected: {e}",
                            n_units=len(units), volume=volume,
                            elapsed=elapsed)
                        break
                    on_demand = True
                    itype = p.itype
                    stats.escalations += 1
                    if obs.enabled:
                        obs.metrics.counter("runner.spot.escalations",
                                            reason="launch-rejected").inc()
                    nxt = ctx.cloud.launch_instance(itype, wait=False)
                    zone = nxt.zone.name
            seg_restart = max(decision.resume_at, nxt.ready_at)
            seg_restart += p.restart_overhead
            nxt.mark_running(seg_restart)
            stats.queued_seconds += decision.queued_seconds
            elapsed = seg_restart - work_start
            active = nxt

        if first_full is not None:
            stats.on_demand_equivalent += (billed_hours(first_full)
                                           * p.itype.hourly_rate)

        if failed is not None:
            if obs.enabled:
                obs.tracer.instant("runner.bin.failed", cat="runner",
                                   track=active.instance_id, bin=idx,
                                   reason=failed.reason)
                obs.metrics.counter("runner.bins.failed",
                                    reason=failed.reason.split(":")[0]).inc()
            return BinOutcome(failure=failed, active=active,
                              duration=elapsed, end=work_start + elapsed)
        run = InstanceRun(
            instance_id=active.instance_id,
            n_units=len(units),
            volume=volume,
            boot_delay=grant.boot_delay,
            duration=elapsed,
            predicted=grant.predicted,
        )
        return BinOutcome(run=run, active=active, duration=elapsed,
                          end=work_start + elapsed)

    def _note_rung(self, obs, stats: SpotRunStats,
                   decision: FallbackDecision) -> None:
        if decision.rung == "rebid-az":
            stats.rebids += 1
            if obs.enabled:
                obs.metrics.counter("runner.spot.rebids").inc()
        elif decision.rung == "retype":
            stats.retypes += 1
            if obs.enabled:
                obs.metrics.counter("runner.spot.retypes").inc()
        elif decision.rung in ("queue", "wait-same-zone"):
            stats.queued += 1
            if obs.enabled:
                obs.metrics.counter("runner.spot.queued",
                                    mode=decision.rung).inc()
        elif decision.rung == "on-demand":
            stats.escalations += 1
            if obs.enabled:
                obs.metrics.counter("runner.spot.escalations",
                                    reason="deadline-risk").inc()


def execute_plan_spot_reference(
    cloud: Cloud,
    workload: Workload,
    plan: ProvisioningPlan,
    *,
    policy: SpotFallbackPolicy | None = None,
    board: SpotMarketBoard | None = None,
    launcher: "ResilientLauncher | None" = None,
    service: ExecutionService | None = None,
    bill: bool = True,
    label: str = "execute_plan_spot",
) -> SpotRunResult:
    """Seed ``execute_plan_spot``, wired to the frozen policies."""
    policy = policy if policy is not None else SpotFallbackPolicy()
    board = board if board is not None else SpotMarketBoard.for_cloud(cloud)
    ladder = SpotLadder(board, policy=policy, chaos=cloud.chaos)
    stats = SpotRunStats()
    acquisition = ReferenceSpotAcquisition(board, ladder=ladder, stats=stats,
                                           launcher=launcher)
    core = ExecutionCore(
        cloud, workload, plan,
        acquisition=acquisition,
        progress=ReferenceSpotProgress(board, ladder, acquisition=acquisition,
                                       chaos=cloud.chaos, stats=stats),
        completion=SpotCompletion(stats=stats),
        service=service,
        bill=bill,
        label=label,
        record_kind="spot",
    )
    result = core.run()
    return SpotRunResult(report=result.report, stats=stats,
                         timeline=result.timeline)
