"""Acceptance tests for the spot sweep (the CI ``chaos`` lane)."""

import pytest

from repro.chaos import SPOT_REGIMES
from repro.cli import main as cli_main
from repro.experiments.exp_spot import (
    evaluate_spot_slos,
    run_cell,
    spot_sweep,
)


class TestRunCellDeterminism:
    @pytest.mark.chaos
    def test_repeat_run_equality(self):
        a = run_cell("eviction-storm", resilience=True, seed=23)
        b = run_cell("eviction-storm", resilience=True, seed=23)
        assert a == b

    @pytest.mark.chaos
    def test_seed_changes_outcome_details(self):
        a = run_cell("choppy", resilience=True, seed=11)
        b = run_cell("choppy", resilience=True, seed=23)
        assert a["cost_usd"] != b["cost_usd"] or \
            a["faults_injected"] != b["faults_injected"]


class TestSweepAcceptance:
    """ISSUE acceptance: the ladder keeps ≤ 10 % miss under EVERY shipped
    regime at a mean cost below pure on-demand; the naive spot baseline
    misses > 25 % under at least one regime."""

    @pytest.fixture(scope="class")
    def sweep(self):
        fig, stats = spot_sweep()
        return stats

    @pytest.mark.chaos
    def test_ladder_on_holds_every_regime(self, sweep):
        for name in SPOT_REGIMES:
            assert sweep["regimes"][name]["on"]["miss_rate"] <= 0.10, name

    @pytest.mark.chaos
    def test_ladder_on_beats_on_demand_cost_every_regime(self, sweep):
        for name in SPOT_REGIMES:
            assert sweep["regimes"][name]["on"]["mean_cost_ratio"] < 1.0, name

    @pytest.mark.chaos
    def test_naive_spot_breaks_somewhere(self, sweep):
        worst = max(s["off"]["miss_rate"]
                    for s in sweep["regimes"].values())
        assert worst > 0.25

    @pytest.mark.chaos
    def test_slos_pass_on_fail_off(self, sweep):
        reports = evaluate_spot_slos(sweep)
        assert reports["on"].ok
        assert not reports["off"].ok
        failed = {r.objective.name for r in reports["off"].results
                  if not r.ok}
        assert "miss-rate" in failed

    @pytest.mark.chaos
    def test_sensitivity_grid_covers_every_combination(self, sweep):
        from repro.experiments.exp_spot import BIDS, SLACKS

        combos = {(g["regime"], g["bid"], g["slack"])
                  for g in sweep["grid"]}
        assert len(combos) == len(SPOT_REGIMES) * len(BIDS) * len(SLACKS)

    @pytest.mark.chaos
    def test_reckless_bid_costs_more_than_default(self, sweep):
        # bid 0.02 prices whole markets out: the ladder falls through to
        # on-demand, so its cost ratio must sit above the default bid's.
        by_bid = {}
        for g in sweep["grid"]:
            by_bid.setdefault(g["bid"], []).append(g["mean_cost_ratio"])
        mean = {b: sum(v) / len(v) for b, v in by_bid.items()}
        assert mean[0.02] > mean[0.06]


class TestSpotCli:
    def test_single_regime_runs(self, capsys):
        assert cli_main(["spot", "--regime", "calm", "--seeds", "1",
                         "--bids", "0.06", "--slacks", "1.0",
                         "--no-ledger"]) == 0
        out = capsys.readouterr().out
        assert "calm" in out

    def test_slo_tables_printed(self, capsys):
        assert cli_main(["spot", "--regime", "calm", "--seeds", "1",
                         "--bids", "0.06", "--slacks", "1.0",
                         "--slo", "--no-ledger"]) == 0
        out = capsys.readouterr().out
        assert "spot-campaign" in out
        assert "policy=on" in out and "policy=off" in out

    def test_runs_slo_roundtrip(self, tmp_path, capsys):
        assert cli_main(["spot", "--regime", "calm", "--seeds", "1",
                         "--bids", "0.06", "--slacks", "1.0",
                         "--runs-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert cli_main(["runs", "slo", "--policy", "spot",
                         "--runs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "spot-campaign" in out and "policy=on" in out

    def test_unknown_regime_is_one_line_error(self, caplog):
        assert cli_main(["spot", "--regime", "not-a-regime"]) == 2
        messages = [r.getMessage() for r in caplog.records]
        assert any("unknown regime" in m for m in messages)

    def test_zero_seeds_rejected(self):
        assert cli_main(["spot", "--seeds", "0"]) == 2

    def test_nonpositive_bid_rejected(self):
        assert cli_main(["spot", "--bids", "0"]) == 2
