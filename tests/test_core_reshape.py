"""Tests for the reshaper."""

import pytest

from repro.core import reshape
from repro.corpus import text_400k_like
from repro.units import KB
from repro.vfs import Segment


@pytest.fixture()
def catalogue():
    return text_400k_like(scale=1e-3)


class TestReshape:
    def test_volume_conserved(self, catalogue):
        plan = reshape(catalogue, 10 * KB)
        assert plan.total_size == catalogue.total_size

    def test_every_file_appears_once(self, catalogue):
        plan = reshape(catalogue, 10 * KB)
        members = [m.path for u in plan.units for m in u.members]
        assert sorted(members) == sorted(f.path for f in catalogue)

    def test_fewer_units_than_files(self, catalogue):
        plan = reshape(catalogue, 10 * KB)
        assert plan.n_units < len(catalogue)
        assert plan.n_input_files == len(catalogue)

    def test_units_respect_target(self, catalogue):
        plan = reshape(catalogue, 10 * KB)
        for u in plan.units:
            assert u.size <= 10 * KB or u.n_members == 1  # oversized solo

    def test_none_keeps_original(self, catalogue):
        plan = reshape(catalogue, None)
        assert plan.unit_size is None
        assert plan.n_units == len(catalogue)
        assert not isinstance(plan.units[0], Segment)

    def test_fill_stats(self, catalogue):
        plan = reshape(catalogue, 20 * KB)
        stats = plan.fill_stats()
        assert 0.5 < stats["mean_fill"] <= 1.0
        assert stats["target"] == 20 * KB

    def test_fill_stats_for_orig(self, catalogue):
        assert reshape(catalogue, None).fill_stats()["mean_fill"] is None

    def test_order_preserved_by_default(self, catalogue):
        plan = reshape(catalogue, 10 * KB)
        firsts = [u.members[0].path for u in plan.units]
        # first members of consecutive units are in catalogue order
        assert firsts == sorted(firsts)

    def test_bad_unit_size(self, catalogue):
        with pytest.raises(ValueError):
            reshape(catalogue, 0)

    def test_greedy_mode_fuller_bins(self, catalogue):
        ordered = reshape(catalogue, 10 * KB, preserve_order=True)
        greedy = reshape(catalogue, 10 * KB, preserve_order=False)
        assert greedy.n_units <= ordered.n_units
