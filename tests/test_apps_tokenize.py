"""Tests for tokenisation utilities."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.tokenize import sentences, strip_markup, tokenize


class TestStripMarkup:
    def test_removes_tags(self):
        assert strip_markup("<p>hello <b>world</b></p>").split() == ["hello", "world"]

    def test_plain_text_untouched(self):
        assert strip_markup("no tags here") == "no tags here"

    def test_empty(self):
        assert strip_markup("") == ""


class TestTokenize:
    def test_words_and_punct(self):
        assert tokenize("The cat, sat.") == ["The", "cat", ",", "sat", "."]

    def test_contractions_kept_whole(self):
        assert "don't" in tokenize("I don't know.")

    def test_numbers(self):
        assert tokenize("room 42 costs 9.5 units") == ["room", "42", "costs", "9.5", "units"]

    def test_empty(self):
        assert tokenize("") == []

    @given(st.text(alphabet=st.characters(codec="ascii"), max_size=300))
    @settings(max_examples=80)
    def test_never_raises(self, text):
        tokenize(text)


class TestSentences:
    def test_splits_on_terminators(self):
        sents = sentences("One two. Three four! Five?")
        assert len(sents) == 3
        assert sents[0] == ["One", "two", "."]

    def test_trailing_fragment_kept(self):
        sents = sentences("Complete. trailing words")
        assert len(sents) == 2
        assert sents[1] == ["trailing", "words"]

    def test_no_token_dropped(self):
        text = "A b c. D e! F"
        flat = [t for s in sentences(text) for t in s]
        assert flat == tokenize(text)

    @given(st.text(alphabet=st.characters(codec="ascii"), max_size=300))
    @settings(max_examples=80)
    def test_sentences_partition_tokens(self, text):
        flat = [t for s in sentences(text) for t in s]
        assert flat == tokenize(text)
