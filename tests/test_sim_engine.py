"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Event, SimulationEngine, SimulationError


class TestScheduling:
    def test_fires_in_time_order(self):
        eng = SimulationEngine()
        log = []
        eng.schedule_at(5.0, lambda: log.append("b"))
        eng.schedule_at(1.0, lambda: log.append("a"))
        eng.schedule_at(9.0, lambda: log.append("c"))
        eng.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        eng = SimulationEngine()
        log = []
        for tag in "abc":
            eng.schedule_at(2.0, lambda t=tag: log.append(t))
        eng.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances(self):
        eng = SimulationEngine()
        seen = []
        eng.schedule_at(3.5, lambda: seen.append(eng.now))
        final = eng.run()
        assert seen == [3.5]
        assert final == 3.5

    def test_schedule_in_relative(self):
        eng = SimulationEngine()
        log = []
        def first():
            eng.schedule_in(2.0, lambda: log.append(eng.now))
        eng.schedule_at(1.0, first)
        eng.run()
        assert log == [3.0]

    def test_schedule_in_past_rejected(self):
        eng = SimulationEngine()
        eng.schedule_at(5.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule_in(-0.1, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        eng = SimulationEngine()
        log = []
        ev = eng.schedule_at(1.0, lambda: log.append("x"))
        eng.schedule_at(2.0, lambda: log.append("y"))
        ev.cancel()
        eng.run()
        assert log == ["y"]

    def test_pending_ignores_cancelled(self):
        eng = SimulationEngine()
        ev = eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        ev.cancel()
        assert eng.pending == 1


class TestRunUntil:
    def test_run_until_stops_clock(self):
        eng = SimulationEngine()
        log = []
        eng.schedule_at(1.0, lambda: log.append(1))
        eng.schedule_at(10.0, lambda: log.append(10))
        t = eng.run(until=5.0)
        assert log == [1]
        assert t == 5.0
        assert eng.pending == 1

    def test_resume_after_until(self):
        eng = SimulationEngine()
        log = []
        eng.schedule_at(10.0, lambda: log.append(10))
        eng.run(until=5.0)
        eng.run()
        assert log == [10]

    def test_run_until_with_empty_heap_advances_clock(self):
        eng = SimulationEngine()
        assert eng.run(until=7.0) == 7.0


class TestSafety:
    def test_runaway_guard(self):
        eng = SimulationEngine(max_events=10)

        def reschedule():
            eng.schedule_in(1.0, reschedule)

        eng.schedule_in(1.0, reschedule)
        with pytest.raises(SimulationError):
            eng.run()

    def test_events_fired_counter(self):
        eng = SimulationEngine()
        for i in range(5):
            eng.schedule_at(float(i), lambda: None)
        eng.run()
        assert eng.events_fired == 5


class TestPendingCounter:
    """``pending`` is a live counter, not a heap scan (regression)."""

    def test_cancel_is_idempotent(self):
        eng = SimulationEngine()
        ev = eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        ev.cancel()
        ev.cancel()
        ev.cancel()
        assert eng.pending == 1

    def test_cancel_after_fire_does_not_decrement(self):
        eng = SimulationEngine()
        ev = eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        eng.step()
        assert eng.pending == 1
        ev.cancel()  # already fired: must be a no-op
        assert eng.pending == 1

    def test_counter_tracks_schedule_fire_cancel(self):
        eng = SimulationEngine()
        events = [eng.schedule_at(float(i), lambda: None) for i in range(10)]
        assert eng.pending == 10
        events[7].cancel()
        events[8].cancel()
        assert eng.pending == 8
        for _ in range(3):
            eng.step()
        assert eng.pending == 5
        eng.run()
        assert eng.pending == 0

    def test_cancel_inside_callback(self):
        eng = SimulationEngine()
        victim = eng.schedule_at(5.0, lambda: None)
        eng.schedule_at(1.0, victim.cancel)
        eng.run()
        assert eng.pending == 0
        assert eng.events_fired == 1

    def test_cancel_after_drain_cannot_underflow(self):
        """Regression: cancelling once the engine drained must not push
        the live counter negative (the decrement is gated on ``_tracked``,
        which firing clears)."""
        eng = SimulationEngine()
        events = [eng.schedule_at(float(i), lambda: None) for i in range(3)]
        eng.run()
        assert eng.pending == 0
        for ev in events:
            ev.cancel()
            ev.cancel()
        assert eng.pending == 0

    def test_cancel_of_unscheduled_event_cannot_underflow(self):
        """A hand-built Event pointing at an engine was never counted, so
        cancelling it must not decrement."""
        eng = SimulationEngine()
        eng.schedule_at(1.0, lambda: None)
        stray = Event(time=9.0, callback=lambda: None, _engine=eng)
        stray.cancel()
        assert stray.cancelled
        assert eng.pending == 1
        eng.run()
        assert eng.pending == 0

    def test_pending_matches_heap_scan(self):
        import random as _random

        rnd = _random.Random(11)
        eng = SimulationEngine()
        live = []
        for _ in range(300):
            r = rnd.random()
            if r < 0.5:
                live.append(eng.schedule_at(eng.now + rnd.random(), lambda: None))
            elif r < 0.75 and live:
                live.pop(rnd.randrange(len(live))).cancel()
            else:
                eng.step()
            scan = sum(1 for e in eng._heap if not e.event.cancelled)
            assert eng.pending == scan
