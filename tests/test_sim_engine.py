"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Event, SimulationEngine, SimulationError


class TestScheduling:
    def test_fires_in_time_order(self):
        eng = SimulationEngine()
        log = []
        eng.schedule_at(5.0, lambda: log.append("b"))
        eng.schedule_at(1.0, lambda: log.append("a"))
        eng.schedule_at(9.0, lambda: log.append("c"))
        eng.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        eng = SimulationEngine()
        log = []
        for tag in "abc":
            eng.schedule_at(2.0, lambda t=tag: log.append(t))
        eng.run()
        assert log == ["a", "b", "c"]

    def test_clock_advances(self):
        eng = SimulationEngine()
        seen = []
        eng.schedule_at(3.5, lambda: seen.append(eng.now))
        final = eng.run()
        assert seen == [3.5]
        assert final == 3.5

    def test_schedule_in_relative(self):
        eng = SimulationEngine()
        log = []
        def first():
            eng.schedule_in(2.0, lambda: log.append(eng.now))
        eng.schedule_at(1.0, first)
        eng.run()
        assert log == [3.0]

    def test_schedule_in_past_rejected(self):
        eng = SimulationEngine()
        eng.schedule_at(5.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule_in(-0.1, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        eng = SimulationEngine()
        log = []
        ev = eng.schedule_at(1.0, lambda: log.append("x"))
        eng.schedule_at(2.0, lambda: log.append("y"))
        ev.cancel()
        eng.run()
        assert log == ["y"]

    def test_pending_ignores_cancelled(self):
        eng = SimulationEngine()
        ev = eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        ev.cancel()
        assert eng.pending == 1


class TestRunUntil:
    def test_run_until_stops_clock(self):
        eng = SimulationEngine()
        log = []
        eng.schedule_at(1.0, lambda: log.append(1))
        eng.schedule_at(10.0, lambda: log.append(10))
        t = eng.run(until=5.0)
        assert log == [1]
        assert t == 5.0
        assert eng.pending == 1

    def test_resume_after_until(self):
        eng = SimulationEngine()
        log = []
        eng.schedule_at(10.0, lambda: log.append(10))
        eng.run(until=5.0)
        eng.run()
        assert log == [10]

    def test_run_until_with_empty_heap_advances_clock(self):
        eng = SimulationEngine()
        assert eng.run(until=7.0) == 7.0


class TestSafety:
    def test_runaway_guard(self):
        eng = SimulationEngine(max_events=10)

        def reschedule():
            eng.schedule_in(1.0, reschedule)

        eng.schedule_in(1.0, reschedule)
        with pytest.raises(SimulationError):
            eng.run()

    def test_events_fired_counter(self):
        eng = SimulationEngine()
        for i in range(5):
            eng.schedule_at(float(i), lambda: None)
        eng.run()
        assert eng.events_fired == 5


class TestPendingCounter:
    """``pending`` is a live counter, not a heap scan (regression)."""

    def test_cancel_is_idempotent(self):
        eng = SimulationEngine()
        ev = eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        ev.cancel()
        ev.cancel()
        ev.cancel()
        assert eng.pending == 1

    def test_cancel_after_fire_does_not_decrement(self):
        eng = SimulationEngine()
        ev = eng.schedule_at(1.0, lambda: None)
        eng.schedule_at(2.0, lambda: None)
        eng.step()
        assert eng.pending == 1
        ev.cancel()  # already fired: must be a no-op
        assert eng.pending == 1

    def test_counter_tracks_schedule_fire_cancel(self):
        eng = SimulationEngine()
        events = [eng.schedule_at(float(i), lambda: None) for i in range(10)]
        assert eng.pending == 10
        events[7].cancel()
        events[8].cancel()
        assert eng.pending == 8
        for _ in range(3):
            eng.step()
        assert eng.pending == 5
        eng.run()
        assert eng.pending == 0

    def test_cancel_inside_callback(self):
        eng = SimulationEngine()
        victim = eng.schedule_at(5.0, lambda: None)
        eng.schedule_at(1.0, victim.cancel)
        eng.run()
        assert eng.pending == 0
        assert eng.events_fired == 1

    def test_cancel_after_drain_cannot_underflow(self):
        """Regression: cancelling once the engine drained must not push
        the live counter negative (the decrement is gated on ``_tracked``,
        which firing clears)."""
        eng = SimulationEngine()
        events = [eng.schedule_at(float(i), lambda: None) for i in range(3)]
        eng.run()
        assert eng.pending == 0
        for ev in events:
            ev.cancel()
            ev.cancel()
        assert eng.pending == 0

    def test_cancel_of_unscheduled_event_cannot_underflow(self):
        """A hand-built Event pointing at an engine was never counted, so
        cancelling it must not decrement."""
        eng = SimulationEngine()
        eng.schedule_at(1.0, lambda: None)
        stray = Event(time=9.0, callback=lambda: None, _engine=eng)
        stray.cancel()
        assert stray.cancelled
        assert eng.pending == 1
        eng.run()
        assert eng.pending == 0

    def test_pending_matches_heap_scan(self):
        import random as _random

        rnd = _random.Random(11)
        eng = SimulationEngine()
        live = []
        for _ in range(300):
            r = rnd.random()
            if r < 0.5:
                live.append(eng.schedule_at(eng.now + rnd.random(), lambda: None))
            elif r < 0.75 and live:
                live.pop(rnd.randrange(len(live))).cancel()
            else:
                eng.step()
            scan = sum(1 for e in eng._heap if not e[2].cancelled)
            assert eng.pending == scan


class TestUnderflowRaises:
    """Satellite: the pending-counter underflow guard must survive
    ``python -O`` — it raises :class:`SimulationError`, not ``assert``."""

    def test_underflow_raises_simulation_error(self):
        eng = SimulationEngine()
        # A hand-built event claiming to be tracked, while the engine's
        # counter is at zero: the only way to drive the counter negative.
        rogue = Event(time=1.0, callback=lambda: None,
                      _engine=eng, _tracked=True)
        with pytest.raises(SimulationError, match="underflow"):
            rogue.cancel()
        # The counter is clamped back to zero, not left negative.
        assert eng.pending == 0

    def test_underflow_guard_not_an_assert(self):
        import inspect

        from repro.sim import engine as engine_mod

        src = inspect.getsource(engine_mod.SimulationEngine._note_cancel)
        assert "assert" not in src


class TestCompaction:
    """Satellite: cancelled entries must not accumulate without bound."""

    def test_heap_size_stays_bounded_under_cancel_storm(self):
        eng = SimulationEngine(scheduler="heap")
        for round_ in range(50):
            events = [eng.schedule_at(eng.now + 1.0 + i * 1e-3, lambda: None)
                      for i in range(100)]
            for ev in events:
                ev.cancel()
            # Compaction guarantee: stored <= 2 * pending (+ small floor).
            assert eng.stored_entries <= max(2 * eng.pending, 128)
        assert eng.pending == 0
        assert eng.stored_entries <= 128

    def test_bucket_size_stays_bounded_under_cancel_storm(self):
        eng = SimulationEngine(scheduler="bucket")
        for round_ in range(50):
            events = [eng.schedule_at(eng.now + 1.0 + i * 1e-3, lambda: None)
                      for i in range(100)]
            for ev in events:
                ev.cancel()
            assert eng.stored_entries <= max(2 * eng.pending, 128)
        assert eng.pending == 0

    def test_compaction_preserves_live_events(self):
        eng = SimulationEngine(scheduler="heap")
        log = []
        keep = [eng.schedule_at(float(i), lambda i=i: log.append(i))
                for i in range(10)]
        doomed = [eng.schedule_at(100.0 + i, lambda: log.append(-1))
                  for i in range(200)]
        for ev in doomed:
            ev.cancel()
        assert keep  # silence unused warning
        eng.run()
        assert log == list(range(10))


class TestScheduleBatch:
    def test_batch_fires_in_order(self):
        eng = SimulationEngine()
        log = []
        eng.schedule_batch(
            [3.0, 1.0, 2.0],
            [lambda: log.append("c"), lambda: log.append("a"),
             lambda: log.append("b")],
        )
        eng.run()
        assert log == ["a", "b", "c"]

    def test_batch_broadcast_callback_and_label(self):
        eng = SimulationEngine()
        log = []
        events = eng.schedule_batch([1.0, 2.0, 3.0],
                                    lambda: log.append(eng.now),
                                    "tick")
        assert [ev.label for ev in events] == ["tick"] * 3
        eng.run()
        assert log == [1.0, 2.0, 3.0]

    def test_batch_ties_fire_in_input_order(self):
        eng = SimulationEngine()
        log = []
        eng.schedule_batch(
            [2.0, 2.0, 2.0],
            [lambda: log.append("a"), lambda: log.append("b"),
             lambda: log.append("c")],
        )
        eng.run()
        assert log == ["a", "b", "c"]

    def test_batch_matches_loop_of_schedule_at(self):
        import random as _random

        rnd = _random.Random(7)
        times = [rnd.uniform(0, 50) for _ in range(400)]
        log_a, log_b = [], []
        eng_a = SimulationEngine()
        for i, t in enumerate(times):
            eng_a.schedule_at(t, lambda i=i: log_a.append(i), label=f"e{i}")
        eng_b = SimulationEngine()
        eng_b.schedule_batch(
            times,
            [lambda i=i: log_b.append(i) for i in range(len(times))],
            [f"e{i}" for i in range(len(times))],
        )
        eng_a.run()
        eng_b.run()
        assert log_a == log_b
        assert eng_a.now == eng_b.now

    def test_batch_rejects_past_times_atomically(self):
        eng = SimulationEngine()
        eng.schedule_at(5.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.schedule_batch([6.0, 1.0], lambda: None)
        assert eng.pending == 0

    def test_batch_length_mismatch(self):
        eng = SimulationEngine()
        with pytest.raises(SimulationError):
            eng.schedule_batch([1.0, 2.0], [lambda: None])
        with pytest.raises(SimulationError):
            eng.schedule_batch([1.0, 2.0], lambda: None, ["a"])

    def test_empty_batch(self):
        eng = SimulationEngine()
        assert eng.schedule_batch([], lambda: None) == []

    def test_batch_pending_counter(self):
        eng = SimulationEngine()
        events = eng.schedule_batch([1.0, 2.0, 3.0], lambda: None)
        assert eng.pending == 3
        events[1].cancel()
        assert eng.pending == 2
        eng.run()
        assert eng.pending == 0


class TestBucketScheduler:
    def test_explicit_bucket_mode(self):
        eng = SimulationEngine(scheduler="bucket")
        assert eng.scheduler == "bucket"
        log = []
        eng.schedule_at(5.0, lambda: log.append("b"))
        eng.schedule_at(1.0, lambda: log.append("a"))
        eng.schedule_at(9.0, lambda: log.append("c"))
        eng.run()
        assert log == ["a", "b", "c"]

    def test_auto_migrates_past_threshold(self):
        from repro.sim.engine import AUTO_BUCKET_THRESHOLD

        eng = SimulationEngine()
        assert eng.scheduler == "heap"
        for i in range(AUTO_BUCKET_THRESHOLD + 1):
            eng.schedule_at(float(i), lambda: None)
        assert eng.scheduler == "bucket"
        eng.run()
        assert eng.events_fired == AUTO_BUCKET_THRESHOLD + 1

    def test_heap_mode_never_migrates(self):
        eng = SimulationEngine(scheduler="heap")
        for i in range(1000):
            eng.schedule_at(float(i), lambda: None)
        assert eng.scheduler == "heap"

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine(scheduler="wheel")

    def test_bucket_schedule_behind_open_bucket(self):
        """run(until=...) can open a far-future bucket; a later schedule
        that precedes it must still fire first."""
        eng = SimulationEngine(scheduler="bucket", bucket_width=1.0)
        log = []
        eng.schedule_at(50.0, lambda: log.append("far"))
        eng.run(until=10.0)  # peeks: opens the t=50 bucket
        eng.schedule_at(11.0, lambda: log.append("near"))
        eng.run()
        assert log == ["near", "far"]

    def test_bucket_ties_fire_in_scheduling_order(self):
        eng = SimulationEngine(scheduler="bucket", bucket_width=10.0)
        log = []
        for tag in "abcdef":
            eng.schedule_at(2.0, lambda t=tag: log.append(t))
        eng.run()
        assert log == list("abcdef")

    def test_bucket_run_until(self):
        eng = SimulationEngine(scheduler="bucket")
        log = []
        eng.schedule_at(1.0, lambda: log.append(1))
        eng.schedule_at(10.0, lambda: log.append(10))
        t = eng.run(until=5.0)
        assert log == [1]
        assert t == 5.0
        assert eng.pending == 1
        eng.run()
        assert log == [1, 10]

    def test_degenerate_width_all_same_time(self):
        eng = SimulationEngine(scheduler="bucket")
        log = []
        for i in range(20):
            eng.schedule_at(4.0, lambda i=i: log.append(i))
        eng.run()
        assert log == list(range(20))
