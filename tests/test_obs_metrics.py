"""Tests for the metrics registry."""

import pytest

from repro.obs.metrics import (
    Histogram,
    MetricsError,
    MetricsRegistry,
    series_key,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        reg.counter("a.b").inc(2.5)
        assert reg.value("a.b") == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().counter("a.b").inc(-1)

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("a.b")
        g.set(5.0)
        g.add(-2.0)
        assert reg.value("a.b") == 3.0

    def test_histogram_buckets_and_stats(self):
        h = Histogram(bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.mean == pytest.approx(55.5 / 3)
        assert (h.vmin, h.vmax) == (0.5, 50.0)
        d = h.to_dict()
        assert d["count"] == 3 and "inf" in d["buckets"]

    def test_histogram_bounds_must_be_sorted_unique(self):
        with pytest.raises(MetricsError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(MetricsError):
            Histogram(bounds=(1.0, 1.0))


class TestRegistry:
    def test_same_series_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b", k="v") is reg.counter("a.b", k="v")
        assert reg.counter("a.b", k="v") is not reg.counter("a.b", k="w")

    def test_label_order_does_not_split_series(self):
        reg = MetricsRegistry()
        reg.counter("a.b", x=1, y=2).inc()
        assert reg.value("a.b", y=2, x=1) == 1.0

    def test_series_key_format(self):
        assert series_key("a.b", {}) == "a.b"
        assert series_key("a.b", {"y": 2, "x": 1}) == "a.b{x=1,y=2}"

    def test_name_convention_enforced(self):
        reg = MetricsRegistry()
        for bad in ("NoDots", "Upper.case", "a.b-c", "a."):
            with pytest.raises(MetricsError):
                reg.counter(bad)

    def test_kind_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(MetricsError):
            reg.gauge("a.b")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a.hits", h="ff").inc(2)
        reg.gauge("a.margin").set(-1.5)
        reg.histogram("a.seconds").observe(0.2)
        snap = reg.snapshot()
        assert snap["counters"] == {"a.hits{h=ff}": 2.0}
        assert snap["gauges"] == {"a.margin": -1.5}
        assert snap["histograms"]["a.seconds"]["count"] == 1

    def test_series_sorted_by_id(self):
        reg = MetricsRegistry()
        reg.counter("z.last").inc()
        reg.counter("a.first").inc()
        ids = [sid for _, sid, _ in reg.series()]
        assert ids == sorted(ids)


class TestMerge:
    def test_counters_add_gauges_overwrite_histograms_fold(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("m.c").inc(1)
        b.counter("m.c").inc(2)
        a.gauge("m.g").set(1.0)
        b.gauge("m.g").set(9.0)
        a.histogram("m.h").observe(0.2)
        b.histogram("m.h").observe(2.0)
        a.merge(b)
        assert a.value("m.c") == 3.0
        assert a.value("m.g") == 9.0
        h = a.histogram("m.h")
        assert h.count == 2 and h.total == pytest.approx(2.2)

    def test_merge_brings_new_series(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("m.only_b", k="v").inc(4)
        a.merge(b)
        assert a.value("m.only_b", k="v") == 4.0

    def test_merge_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("m.h", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("m.h", buckets=(1.0, 3.0)).observe(0.5)
        with pytest.raises(MetricsError):
            a.merge(b)


class TestDisabledFastPath:
    def test_disabled_hands_out_shared_nulls(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a.b") is reg.counter("c.d")
        assert reg.gauge("a.b") is reg.gauge("c.d")
        assert reg.histogram("a.b") is reg.histogram("c.d")

    def test_null_instruments_record_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("a.b").inc(5)
        reg.gauge("a.c").set(5)
        reg.histogram("a.d").observe(5)
        assert reg.snapshot() == \
            {"counters": {}, "gauges": {}, "histograms": {}}


class TestDumpMerge:
    def test_dump_roundtrip_equals_merge(self):
        import pickle

        from repro.obs.metrics import MetricsRegistry

        src = MetricsRegistry()
        src.counter("a.b.count").inc(3)
        src.counter("a.b.count", zone="us-east-1a").inc(2)
        src.gauge("a.b.level").set(7.5)
        src.histogram("a.b.seconds").observe(0.3)
        src.histogram("a.b.seconds").observe(42.0)

        dump = pickle.loads(pickle.dumps(src.dump()))
        via_dump = MetricsRegistry()
        via_dump.merge_dump(dump)
        via_merge = MetricsRegistry()
        via_merge.merge(src)
        assert via_dump.snapshot() == via_merge.snapshot() == src.snapshot()

    def test_merge_dump_accumulates(self):
        from repro.obs.metrics import MetricsRegistry

        a = MetricsRegistry()
        a.counter("x.y.n").inc(1)
        b = MetricsRegistry()
        b.counter("x.y.n").inc(2)
        target = MetricsRegistry()
        target.merge_dump(a.dump())
        target.merge_dump(b.dump())
        assert target.value("x.y.n") == 3

    def test_merge_dump_kind_mismatch_rejected(self):
        import pytest

        from repro.obs.metrics import MetricsError, MetricsRegistry

        a = MetricsRegistry()
        a.counter("x.y.n").inc(1)
        target = MetricsRegistry()
        target.gauge("x.y.n").set(1.0)
        with pytest.raises(MetricsError):
            target.merge_dump(a.dump())
