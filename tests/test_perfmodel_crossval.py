"""Tests for cross-validated model selection."""

import numpy as np
import pytest

from repro.perfmodel.crossval import cross_validate, select_by_cv
from repro.perfmodel.regression import FitError


def linear_data(seed=0, n=20, noise=0.02):
    rng = np.random.default_rng(seed)
    x = np.logspace(5, 8, n)
    y = (0.3 + 0.9e-4 * x) * (1 + rng.normal(0, noise, n))
    return x, y


def power_data(seed=0, n=20, noise=0.02):
    rng = np.random.default_rng(seed)
    x = np.logspace(5, 8, n)
    y = 2e-3 * x**0.75 * (1 + rng.normal(0, noise, n))
    return x, y


class TestCrossValidate:
    def test_affine_wins_on_linear_data(self):
        x, y = linear_data()
        scores = cross_validate(x, y)
        assert scores[0].family in ("affine", "linear")

    def test_power_family_wins_on_power_data(self):
        x, y = power_data()
        scores = cross_validate(x, y)
        assert scores[0].family in ("power", "xlogx")

    def test_scores_sorted_by_rmse(self):
        x, y = linear_data()
        scores = cross_validate(x, y)
        rmses = [s.rmse for s in scores]
        assert rmses == sorted(rmses)

    def test_unfittable_families_skipped(self):
        # negative y rules out every log-space family
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        y = np.array([-1.0, 0.0, 1.0, 2.0, 3.0, 4.0])
        scores = cross_validate(x, y)
        assert {s.family for s in scores} <= {"affine", "exponential"}
        assert any(s.family == "affine" for s in scores)

    def test_too_few_points(self):
        with pytest.raises(FitError):
            cross_validate([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])

    def test_shape_mismatch(self):
        with pytest.raises(FitError):
            cross_validate([1.0, 2.0, 3.0, 4.0], [1.0, 2.0])

    def test_folds_capped_at_n(self):
        x, y = linear_data(n=5)
        scores = cross_validate(x, y, k=50)
        assert all(s.folds_used <= 5 for s in scores)

    def test_deterministic(self):
        x, y = linear_data(seed=3)
        a = cross_validate(x, y)
        b = cross_validate(x, y)
        assert [(s.family, s.rmse) for s in a] == [(s.family, s.rmse) for s in b]


class TestSelectByCv:
    def test_returns_fitted_winner(self):
        x, y = linear_data()
        model, scores = select_by_cv(x, y)
        assert model.name == scores[0].family
        assert model.r2 > 0.99

    def test_cv_beats_r2_on_extrapolation(self):
        """The motivating case: a flexible family can edge out affine on
        in-sample R² while extrapolating worse; CV picks the transferable
        model for truly linear data in most noise realizations."""
        wins = 0
        trials = 10
        for seed in range(trials):
            x, y = linear_data(seed=seed, noise=0.06)
            model, _ = select_by_cv(x, y)
            truth = 0.3 + 0.9e-4 * 1e9
            err_cv = abs(model.predict(1e9) - truth) / truth
            if err_cv < 0.15:
                wins += 1
        assert wins >= 8
