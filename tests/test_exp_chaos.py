"""Acceptance tests for the chaos sweep (the CI ``chaos`` lane)."""

import pytest

from repro.chaos import SCENARIOS
from repro.cli import main as cli_main
from repro.experiments.exp_chaos import chaos_sweep, run_cell


class TestRunCellDeterminism:
    @pytest.mark.chaos
    def test_repeat_run_equality(self):
        # The ISSUE-level determinism bar: an identical seed reproduces
        # the whole cell — misses, costs, fault log, launcher stats.
        a = run_cell("kitchen-sink", resilience=True, seed=11)
        b = run_cell("kitchen-sink", resilience=True, seed=11)
        assert a == b

    @pytest.mark.chaos
    def test_seed_changes_outcome_details(self):
        a = run_cell("flaky-boots", resilience=True, seed=11)
        b = run_cell("flaky-boots", resilience=True, seed=23)
        assert a["faults_injected"] != b["faults_injected"] or \
            a["cost_usd"] != b["cost_usd"]


class TestSweepAcceptance:
    """ISSUE acceptance: resilience-on ≤ 10 % miss under EVERY shipped
    scenario; resilience-off > 25 % on at least one."""

    @pytest.fixture(scope="class")
    def sweep(self):
        fig, stats = chaos_sweep()
        return stats

    @pytest.mark.chaos
    def test_resilience_on_holds_every_scenario(self, sweep):
        for name in SCENARIOS:
            assert sweep[name]["on"]["miss_rate"] <= 0.10, name

    @pytest.mark.chaos
    def test_resilience_off_breaks_somewhere(self, sweep):
        worst = max(s["off"]["miss_rate"] for s in sweep.values())
        assert worst > 0.25

    @pytest.mark.chaos
    def test_off_policy_surfaces_failures_not_exceptions(self, sweep):
        # az-blackout without resilience: every bin fails (explicit
        # outcome), nothing raises out of the sweep
        assert sweep["az-blackout"]["off"]["miss_rate"] == 1.0
        assert sum(c["failed"]
                   for c in sweep["az-blackout"]["on"]["cells"]) == 0


class TestChaosCli:
    def test_single_scenario_runs(self, capsys):
        assert cli_main(["chaos", "--scenario", "az-blackout",
                         "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "az-blackout" in out

    def test_unknown_scenario_is_one_line_error(self, caplog):
        assert cli_main(["chaos", "--scenario", "not-a-scenario"]) == 2
        messages = [r.getMessage() for r in caplog.records]
        assert any("unknown scenario" in m for m in messages)

    def test_zero_seeds_rejected(self):
        assert cli_main(["chaos", "--seeds", "0"]) == 2

    def test_unknown_subcommand_exits_nonzero_without_traceback(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "frobnicate"],
            capture_output=True, text=True)
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert proc.stderr.count("\n") <= 3  # usage + one-line error

    def test_invalid_argument_exits_nonzero(self):
        assert cli_main(["chaos", "--seeds", "many"]) == 2
