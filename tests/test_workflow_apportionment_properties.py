"""Property-based tests for the full-hour subdeadline apportionment."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.apps import GrepApplication, GrepCostProfile
from repro.cloud import Workload
from repro.core import TextWorkflow, WorkflowStage, assign_subdeadlines
from repro.perfmodel.regression import fit_affine
from repro.units import HOUR


def make_pipeline(slopes):
    """A linear pipeline with one stage per slope (all ratios 1)."""
    wl = Workload("grep", GrepApplication(), GrepCostProfile())
    x = np.array([1e5, 1e6, 1e7])
    wf = TextWorkflow()
    prev = None
    for i, b in enumerate(slopes):
        stage = WorkflowStage(f"s{i}", wl, fit_affine(x, 0.1 + b * x))
        wf.add_stage(stage, after=[prev] if prev else None)
        prev = f"s{i}"
    return wf


slopes_strategy = st.lists(
    st.floats(min_value=1e-9, max_value=1e-3), min_size=1, max_size=6)


class TestApportionmentProperties:
    @given(slopes_strategy, st.integers(min_value=1, max_value=24))
    @settings(max_examples=60, deadline=4000)
    def test_hours_fully_allocated(self, slopes, hours):
        assume(hours >= len(slopes))
        wf = make_pipeline(slopes)
        shares = assign_subdeadlines(wf, 10**8, hours * HOUR)
        assert sum(shares.values()) == hours * HOUR
        assert all(s % HOUR == 0 for s in shares.values())
        assert all(s >= HOUR for s in shares.values())

    @given(slopes_strategy, st.integers(min_value=1, max_value=24))
    @settings(max_examples=60, deadline=4000)
    def test_fractional_mode_sums_exactly(self, slopes, hours):
        wf = make_pipeline(slopes)
        shares = assign_subdeadlines(wf, 10**8, hours * HOUR, hour_align=False)
        assert abs(sum(shares.values()) - hours * HOUR) < 1e-6

    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=6, max_value=24))
    @settings(max_examples=40, deadline=4000)
    def test_heavier_stage_gets_no_fewer_hours(self, n_stages, hours):
        """Monotone fairness: strictly heavier stages never get less."""
        slopes = [1e-7 * (i + 1) for i in range(n_stages)]
        wf = make_pipeline(slopes)
        shares = assign_subdeadlines(wf, 10**9, hours * HOUR)
        ordered = [shares[f"s{i}"] for i in range(n_stages)]
        assert all(a <= b for a, b in zip(ordered, ordered[1:]))

    @given(slopes_strategy)
    @settings(max_examples=30, deadline=4000)
    def test_deterministic(self, slopes):
        wf1 = make_pipeline(slopes)
        wf2 = make_pipeline(slopes)
        a = assign_subdeadlines(wf1, 10**8, 12 * HOUR)
        b = assign_subdeadlines(wf2, 10**8, 12 * HOUR)
        assert a == b
