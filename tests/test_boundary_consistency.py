"""Cross-boundary consistency: native work, estimates and simulated time
must order the same way for every application.

These tests guard the reproduction's central honesty property: the hidden
cost profiles (what the simulator charges) and the real applications (what
actually happens to bytes) cannot drift apart without something failing.
"""

import pytest

from repro.apps import (
    ExtractCostProfile,
    ExtractorApplication,
    GrepApplication,
    GrepCostProfile,
    PosCostProfile,
    PosTaggerApplication,
    as_unit_meta,
)
from repro.cloud import Cloud, ExecutionService, Workload
from repro.corpus import html_18mil_like, text_400k_like
from repro.core import reshape
from repro.units import KB

APPS = [
    ("grep", GrepApplication(), GrepCostProfile(), html_18mil_like(scale=2e-5)),
    ("extract", ExtractorApplication(), ExtractCostProfile(), html_18mil_like(scale=2e-5)),
    ("postag", PosTaggerApplication(), PosCostProfile(), text_400k_like(scale=2e-4)),
]


@pytest.mark.parametrize("name,app,profile,cat", APPS, ids=[a[0] for a in APPS])
class TestBoundaryConsistency:
    def test_estimate_bytes_match_native_exactly(self, name, app, profile, cat):
        units = list(cat)[:15]
        native = app.run_native(units).work
        est = app.estimate_work([as_unit_meta(u) for u in units])
        assert est.bytes_read == native.bytes_read
        assert est.files_opened == native.files_opened

    def test_more_data_costs_more_simulated_time(self, name, app, profile, cat):
        cloud = Cloud(seed=81)
        inst = cloud.launch_instance()
        inst.cpu_factor = inst.io_factor = 1.0
        svc = ExecutionService(cloud, noise_sigma=0.0)
        wl = Workload(name, app, profile)
        small = list(cat)[:10]
        large = list(cat)[:40]
        t_small = svc.run(inst, small, wl)
        t_large = svc.run(inst, large, wl)
        assert t_large > t_small

    def test_breakdown_components_nonnegative(self, name, app, profile, cat):
        metas = [as_unit_meta(u) for u in list(cat)[:10]]
        b = profile.breakdown(metas)
        assert b.setup >= 0 and b.io >= 0 and b.cpu >= 0
        assert b.total > 0

    def test_reshaping_preserves_estimated_bytes(self, name, app, profile, cat):
        plan = reshape(cat, 50 * KB)
        est_orig = app.estimate_work([as_unit_meta(u) for u in cat])
        est_merged = app.estimate_work([as_unit_meta(u) for u in plan.units])
        assert est_merged.bytes_read == est_orig.bytes_read
        assert est_merged.files_opened < est_orig.files_opened


class TestReshapingDirectionPerApp:
    """Reshaping must help grep-like profiles and not help the tagger —
    the paper's two headline outcomes, asserted straight on the profiles."""

    def simulated_time(self, name, app, profile, units):
        cloud = Cloud(seed=82)
        inst = cloud.launch_instance()
        inst.cpu_factor = inst.io_factor = 1.0
        svc = ExecutionService(cloud, noise_sigma=0.0)
        return svc.run(inst, units, Workload(name, app, profile))

    def test_grep_prefers_merged(self):
        cat = html_18mil_like(scale=2e-4)
        merged = list(reshape(cat, 1000 * KB).units)
        t_orig = self.simulated_time("grep", GrepApplication(), GrepCostProfile(),
                                     list(cat))
        t_merged = self.simulated_time("grep", GrepApplication(), GrepCostProfile(),
                                       merged)
        assert t_merged < t_orig

    def test_pos_prefers_original(self):
        cat = text_400k_like(scale=2e-3)
        merged = list(reshape(cat, 500 * KB).units)
        t_orig = self.simulated_time("postag", PosTaggerApplication(),
                                     PosCostProfile(), list(cat))
        t_merged = self.simulated_time("postag", PosTaggerApplication(),
                                       PosCostProfile(), merged)
        assert t_orig < t_merged
