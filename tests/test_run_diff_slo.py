"""Run diffing, SLO evaluation, and the perf-regression gate end to end.

The acceptance demos for the flight recorder: two identical-seed runs
diff *clean* (zero significant deterministic deltas, bit-identical metric
dumps); an artificially degraded engine run is flagged as a >15% perf
regression by ``diff_runs``, by ``regression_gate``, and by the
``repro.cli runs diff --strict`` exit code; and the chaos campaign SLOs
split exactly along the resilience policy — on passes, off violates.
"""

import pytest

from repro.cli import main as cli_main
from repro.obs import configure, disable
from repro.obs.diff import (
    Delta,
    GateViolation,
    diff_runs,
    regression_gate,
    render_diff_table,
    render_gate_report,
)
from repro.obs.ledger import RunLedger, RunRecord, capture_runs, set_run_ledger
from repro.obs.slo import Objective, SloPolicy, render_slo_table


def _event_driven_run(seed: int) -> RunRecord:
    """One 16-bin event-driven plan under a fresh obs bundle + ledger."""
    from repro.cloud import Cloud, Workload
    from repro.apps import PosCostProfile, PosTaggerApplication
    from repro.core import reshape
    from repro.core.planner import ProvisioningPlan
    from repro.corpus import text_400k_like
    from repro.runner import execute_plan_event_driven

    n_bins = 16
    units = list(reshape(text_400k_like(scale=5e-3), None).units)
    assignments = [units[i::n_bins] for i in range(n_bins)]
    plan = ProvisioningPlan(
        deadline=3600.0, planning_deadline=3600.0, strategy="uniform",
        predictor_name="affine", assignments=assignments,
        predicted_times=[60.0] * n_bins)
    configure(trace=False)
    try:
        with capture_runs() as ledger:
            cloud = Cloud(seed=seed)
            execute_plan_event_driven(
                cloud, Workload("postag", PosTaggerApplication(),
                                PosCostProfile()), plan)
        return ledger.records()[-1]
    finally:
        disable()


class TestCleanDiff:
    def test_identical_seeds_diff_clean(self):
        a = _event_driven_run(seed=11)
        b = _event_driven_run(seed=11)
        diff = diff_runs(a, b)
        assert diff.identical_metrics          # bit-identical dumps
        assert diff.significant == []          # zero deterministic drift
        assert not diff.added_series and not diff.removed_series
        assert diff.clean
        assert "CLEAN" in render_diff_table(diff)

    def test_different_seeds_diff_dirty(self):
        diff = diff_runs(_event_driven_run(seed=11),
                         _event_driven_run(seed=12))
        assert not diff.identical_metrics
        assert not diff.clean


class TestDegradationDemo:
    """An artificial engine slowdown must trip every perf tripwire."""

    @pytest.fixture(scope="class")
    def degraded_pair(self):
        from repro.sim.engine import SimulationEngine

        baseline = _event_driven_run(seed=11)
        original = SimulationEngine._insert

        def slow_insert(self, time, ev):
            sum(i * i for i in range(60_000))   # burn wall, not sim, time
            return original(self, time, ev)

        SimulationEngine._insert = slow_insert
        try:
            degraded = _event_driven_run(seed=11)
        finally:
            SimulationEngine._insert = original
        return baseline, degraded

    def test_simulation_itself_unchanged(self, degraded_pair):
        baseline, degraded = degraded_pair
        diff = diff_runs(baseline, degraded)
        assert diff.identical_metrics
        assert diff.significant == []
        assert degraded.deadline == baseline.deadline

    def test_diff_flags_throughput_regression(self, degraded_pair):
        baseline, degraded = degraded_pair
        diff = diff_runs(baseline, degraded, perf_threshold=0.15)
        regressed = {d.field for d in diff.perf_regressions}
        assert "profile.events_per_s" in regressed
        assert "PERF REGRESSION" in render_diff_table(diff)

    def test_gate_flags_throughput_regression(self, degraded_pair):
        baseline, degraded = degraded_pair
        tracked = {"profile.events_per_s": "higher"}
        base = {"profile.events_per_s":
                baseline.get("profile.events_per_s")}
        cur = {"profile.events_per_s":
               degraded.get("profile.events_per_s")}
        violations = regression_gate(base, cur, tracked, threshold=0.15)
        assert [v.metric for v in violations] == ["profile.events_per_s"]
        assert "fell" in violations[0].describe()
        assert "FAIL" in render_gate_report(base, cur, tracked, violations)

    def test_cli_runs_diff_strict_exits_3(self, degraded_pair, tmp_path,
                                          capsys):
        baseline, degraded = degraded_pair
        ledger = RunLedger(tmp_path)
        for rec in degraded_pair:
            ledger.append(RunRecord.from_dict(rec.to_dict()))
        rc = cli_main(["runs", "diff", "--runs-dir", str(tmp_path),
                       "--strict", "--", "-2", "-1"])
        out = capsys.readouterr().out
        assert rc == 3
        assert "PERF REGRESSION" in out


class TestGateEdges:
    def test_improvement_is_not_a_violation(self):
        assert regression_gate({"m": 100.0}, {"m": 200.0},
                               {"m": "higher"}) == []
        assert regression_gate({"m": 100.0}, {"m": 50.0},
                               {"m": "lower"}) == []

    def test_missing_or_zero_baseline_skipped(self):
        assert regression_gate({}, {"m": 50.0}, {"m": "higher"}) == []
        assert regression_gate({"m": 0.0}, {"m": 50.0},
                               {"m": "lower"}) == []

    def test_lower_direction_catches_growth(self):
        v = regression_gate({"wall": 1.0}, {"wall": 1.5}, {"wall": "lower"})
        assert len(v) == 1 and "grew" in v[0].describe()

    def test_delta_direction_semantics(self):
        assert Delta("x", 100.0, 80.0, "higher").regressed(0.15)
        assert not Delta("x", 100.0, 80.0, "lower").regressed(0.15)
        assert not Delta("x", 100.0, 90.0, "higher").regressed(0.15)


class TestChaosSlos:
    @pytest.fixture(scope="class")
    def slo_reports(self):
        from repro.experiments.exp_chaos import evaluate_chaos_slos, run_cell

        cells = {policy: run_cell("slow-ebs", resilience=(policy == "on"),
                                  seed=11)
                 for policy in ("on", "off")}
        stats = {"slow-ebs": {
            policy: {"cells": [cell]} for policy, cell in cells.items()}}
        return evaluate_chaos_slos(stats)

    def test_resilience_on_meets_slos(self, slo_reports):
        report = slo_reports["on"]
        assert report.ok
        assert all(r.ok for r in report.results)
        assert "PASS" in render_slo_table(report)

    def test_resilience_off_violates_miss_rate(self, slo_reports):
        report = slo_reports["off"]
        assert not report.ok
        failed = {r.objective.name for r in report.results if not r.ok}
        assert "miss-rate" in failed
        table = render_slo_table(report)
        assert "FAIL" in table and "PAGE" in table

    def test_cli_runs_slo_splits_policies(self, slo_reports, tmp_path,
                                          capsys):
        from repro.experiments.exp_chaos import _cell_records, run_cell

        cells = {policy: run_cell("slow-ebs", resilience=(policy == "on"),
                                  seed=11)
                 for policy in ("on", "off")}
        stats = {"slow-ebs": {
            policy: {"cells": [cell]} for policy, cell in cells.items()}}
        ledger = RunLedger(tmp_path)
        for records in _cell_records(stats).values():
            for rec in records:
                ledger.append(rec)
        rc = cli_main(["runs", "slo", "--runs-dir", str(tmp_path),
                       "--strict"])
        out = capsys.readouterr().out
        assert rc == 3                     # the off side violates
        assert "policy=on" in out and "policy=off" in out

    def test_slo_objective_validation(self):
        with pytest.raises(ValueError):
            Objective("bad", "m", "<", 1.0)
        with pytest.raises(ValueError):
            Objective("bad", "m", "<=", 1.0, aggregate="median")
        with pytest.raises(ValueError):
            Objective("bad", "m", "<=", 1.0, aggregate="ratio")  # no num/den

    def test_empty_window_passes_vacuously(self):
        policy = SloPolicy("p", (Objective("o", "x", "<=", 1.0),))
        report = policy.evaluate([])
        assert report.ok and report.n_records == 0


class TestSloPolicyRegistry:
    def test_defaults_registered(self):
        from repro.experiments.registry import (
            get_slo_policy,
            load_defaults,
            slo_policy_names,
        )

        load_defaults()
        assert {"chaos", "dag", "spot", "matrix"} <= set(slo_policy_names())
        entry = get_slo_policy("matrix")
        assert entry.group_key == "config.stack"
        assert entry.group_name == "stack"
        assert entry.label_prefix == "exp_matrix."

    def test_register_is_last_writer_wins(self):
        from repro.experiments.registry import (
            get_slo_policy,
            register_slo_policy,
        )
        from repro.obs.slo import Objective, SloPolicy

        slos = SloPolicy("t", (Objective("o", "x", "<=", 1.0),))
        register_slo_policy("_test", slos=slos, group_key="config.a",
                            group_name="a")
        replaced = register_slo_policy("_test", slos=slos,
                                       group_key="config.b", group_name="b")
        assert get_slo_policy("_test") is replaced
        assert get_slo_policy("_test").group_key == "config.b"

    def test_cli_unknown_policy_exits_2(self, tmp_path):
        rc = cli_main(["runs", "slo", "--runs-dir", str(tmp_path),
                       "--policy", "bogus"])
        assert rc == 2


class TestLedgerFixturesRestored:
    def test_module_default_ledger_is_off_after_suite(self):
        from repro.obs.ledger import get_run_ledger

        assert get_run_ledger() is None

    def test_set_run_ledger_returns_previous(self):
        sentinel = RunLedger(None)
        assert set_run_ledger(sentinel) is None
        assert set_run_ledger(None) is sentinel
