"""Negative-path tests for workflow execution and subdeadline splitting."""

import numpy as np
import pytest

from repro.apps import GrepApplication, GrepCostProfile, PosCostProfile, PosTaggerApplication
from repro.cloud import Cloud, Workload
from repro.core import (
    PlanError,
    TextWorkflow,
    WorkflowError,
    WorkflowStage,
    execute_workflow,
)
from repro.corpus import html_18mil_like
from repro.perfmodel.regression import fit_affine
from repro.units import HOUR


def affine(a, b):
    x = np.array([1e5, 1e6, 1e7])
    return fit_affine(x, a + b * x)


def heavy_pipeline():
    wf = TextWorkflow()
    wf.add_stage(WorkflowStage(
        "tag", Workload("postag", PosTaggerApplication(), PosCostProfile()),
        affine(3.0, 0.9e-4)))
    return wf


class TestWorkflowNegativePaths:
    def test_infeasible_subdeadline_raises_plan_error(self):
        """A deadline below any stage's model floor surfaces as PlanError."""
        wf = heavy_pipeline()
        cat = html_18mil_like(scale=1e-5)
        with pytest.raises(PlanError):
            execute_workflow(Cloud(seed=3), wf, cat, deadline=1.0)

    def test_zero_output_stage_starves_dependents(self):
        wf = TextWorkflow()
        wf.add_stage(WorkflowStage(
            "filter", Workload("grep", GrepApplication(), GrepCostProfile()),
            affine(0.2, 1.3e-8), output_ratio=0.0))
        wf.add_stage(WorkflowStage(
            "tag", Workload("postag", PosTaggerApplication(), PosCostProfile()),
            affine(3.0, 0.9e-4)), after=["filter"])
        cat = html_18mil_like(scale=1e-5)
        # the dependent stage has no input units to plan
        with pytest.raises(PlanError):
            execute_workflow(Cloud(seed=3), wf, cat, deadline=3 * HOUR)

    def test_single_stage_workflow_gets_whole_deadline(self):
        from repro.core import assign_subdeadlines

        wf = heavy_pipeline()
        shares = assign_subdeadlines(wf, 10**7, 2 * HOUR)
        assert shares == {"tag": 2 * HOUR}

    def test_stage_volumes_empty_input(self):
        wf = heavy_pipeline()
        assert wf.stage_volumes(0) == {"tag": 0}

    def test_workflow_len(self):
        assert len(heavy_pipeline()) == 1
        assert len(TextWorkflow()) == 0
