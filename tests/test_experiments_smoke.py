"""Smoke tests for the experiment modules at reduced scale.

The benchmarks assert the paper's shape claims at full experiment scale;
these tests only pin the structural contract of each experiment function
(figure ids, output keys, determinism), fast enough for the unit suite.
"""

import pytest

from repro.experiments import exp_fig1, exp_fig2, exp_fleet, exp_grep, exp_pos, exp_side
from repro.report.figures import FigureResult


class TestFig1Smoke:
    def test_fig1a_structure(self):
        fig, stats = exp_fig1.fig1a(scale=2e-5)
        assert isinstance(fig, FigureResult) and fig.fig_id == "Fig1a"
        assert stats["files"] == 360
        assert 0 <= stats["frac_under_50kb"] <= 1

    def test_fig1b_structure(self):
        fig, stats = exp_fig1.fig1b(scale=1e-3)
        assert fig.fig_id == "Fig1b"
        assert stats["files"] == 400


class TestFig2Smoke:
    def test_rules_and_series(self):
        fig, out = exp_fig2.fig2()
        assert len(fig.series) == 2
        assert out["convex_rule"] == "start-new-instances"
        assert out["concave_rule"] == "pack-to-deadline"
        assert out["convex_marginal"]["first_hour"] > 0


class TestGrepSmoke:
    @pytest.fixture(scope="class")
    def tb(self):
        return exp_grep.make_testbed(scale=2e-4, repeats=2)

    def test_fig3(self, tb):
        fig, out = exp_grep.fig3(tb)
        assert fig.fig_id == "Fig3"
        assert out["max_cv"] >= 0
        assert len(out["means"]) == 5  # orig + 4 unit sizes

    def test_fig4_structure(self, tb):
        fig, out = exp_grep.fig4(tb)
        assert fig.fig_id == "Fig4"
        for key in ("orig_over_plateau", "plateau_spread", "small_unit_penalty"):
            assert key in out

    def test_testbed_instance_is_vetted(self, tb):
        assert tb.instance.io_factor > 0.7
        assert tb.volume.attached_to is tb.instance


class TestPosSmoke:
    @pytest.fixture(scope="class")
    def tb(self):
        return exp_pos.make_testbed(scale=0.02, repeats=2)

    def test_fig7_structure(self, tb):
        fig, out = exp_pos.fig7(tb)
        assert fig.fig_id == "Fig7"
        assert out["n_orig_files"] > out["n_1kb_units"]
        assert "orig" in out["means"]

    def test_eq3_fit(self, tb):
        from repro.units import KB, MB

        model = exp_pos.fit_eq3(tb, volumes=(100 * KB, 500 * KB, 2 * MB))
        assert model.b > 0
        assert model.r2 > 0.95

    def test_fig8_structure(self, tb):
        fig, out = exp_pos.fig8(tb, deadline=120.0)
        assert set(out["variants"]) == {
            "8a_first_fit_model3", "8b_uniform_model3",
            "8c_uniform_model4", "8d_adjusted_model4",
        }
        for v in out["variants"].values():
            assert v["instances"] >= 1
            assert len(v["durations"]) >= 1

    def test_novels_structure(self):
        fig, out = exp_pos.novels()
        assert out["word_gap"] < 300
        assert out["ratio"] > 1.0


class TestFleetSmoke:
    def test_shared_vs_isolated_structure(self):
        fig, out = exp_fleet.shared_vs_isolated(n_campaigns=4, max_instances=4)
        assert isinstance(fig, FigureResult) and fig.fig_id == "FleetShare"
        assert out["shared_cost_usd"] < out["isolated_cost_usd"]
        assert out["warm_hit_rate"] > 0
        assert out["shared_miss_rate"] <= out["isolated_miss_rate"]
        assert out["admission"]["rejected"] == 0
        assert sum(out["per_tenant_cost"].values()) == pytest.approx(
            out["shared_cost_usd"], abs=0.0)

    def test_run_shared_fleet_deterministic(self):
        _, r1 = exp_fleet.run_shared_fleet(n_campaigns=4, max_instances=4)
        _, r2 = exp_fleet.run_shared_fleet(n_campaigns=4, max_instances=4)
        assert r1.summary() == r2.summary()


class TestSideSmoke:
    def test_switching_numbers(self):
        _, out = exp_side.instance_switching()
        assert out["swap_fast_gb"] > out["keep_gb"] > out["swap_slow_gb"]

    def test_protocol_trace(self):
        _, out = exp_side.probe_protocol_trace()
        assert out["rounds"] >= 1
        assert len(out["volumes"]) == out["rounds"]

    def test_retrieval(self):
        _, out = exp_side.output_retrieval(n_fragments=20)
        assert out["speedup"] > 1.0

    def test_spot(self):
        _, out = exp_side.spot_tradeoff(work_hours=5.0, horizon=100)
        assert len(out["bids"]) == 5
