"""Tests for the HTML→text extractor application."""


from repro.apps import ExtractCostProfile, ExtractorApplication, as_unit_meta
from repro.apps.extractor import extract_text
from repro.corpus import html_18mil_like
from repro.sim.random import RngStream
from repro.units import KB
from repro.vfs import LiteralFile


class TestExtractText:
    def test_strips_tags(self):
        out = extract_text("<html><body><p>Hello  world</p></body></html>")
        assert "<" not in out and ">" not in out
        assert "Hello world" in out

    def test_normalises_whitespace(self):
        out = extract_text("a    b\t\tc")
        assert out == "a b c"

    def test_collapses_blank_lines(self):
        out = extract_text("a\n\n\n\n\nb")
        assert out == "a\n\nb"

    def test_empty(self):
        assert extract_text("") == ""


class TestExtractorApplication:
    def test_native_run_counts(self):
        f = LiteralFile.from_text("a.html", "<p>one two three</p>")
        res = ExtractorApplication().run_native([f])
        assert res.work.files_opened == 1
        assert res.work.bytes_read == f.size
        assert res.work.output_bytes == len("one two three")
        assert res.outputs["texts"] == ["one two three"]

    def test_output_smaller_than_input_for_html(self):
        cat = html_18mil_like(scale=2e-5)
        units = list(cat)[:10]
        res = ExtractorApplication().run_native(units)
        assert 0 < res.work.output_bytes < res.work.bytes_read

    def test_estimate_tracks_native(self):
        cat = html_18mil_like(scale=2e-5)
        units = list(cat)[:10]
        app = ExtractorApplication()
        native = app.run_native(units).work
        est = app.estimate_work([as_unit_meta(u) for u in units])
        assert est.files_opened == native.files_opened
        assert est.bytes_read == native.bytes_read
        assert abs(est.output_bytes - native.output_bytes) / native.output_bytes < 0.15


class TestExtractCostProfile:
    def test_io_dominated(self):
        p = ExtractCostProfile()
        meta = as_unit_meta(html_18mil_like(scale=2e-5)[0])
        b = p.breakdown([meta])
        assert b.io > b.cpu

    def test_markup_reduces_write_cost(self):
        from repro.apps import UnitMeta
        from repro.vfs import TextStats

        p = ExtractCostProfile()
        plain = p.breakdown([UnitMeta(size=100 * KB, stats=TextStats(markup_fraction=0.0))])
        marked = p.breakdown([UnitMeta(size=100 * KB, stats=TextStats(markup_fraction=0.5))])
        assert marked.io < plain.io

    def test_setup_draw(self):
        p = ExtractCostProfile()
        assert p.draw_setup(RngStream(1)) > 0
