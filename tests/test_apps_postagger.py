"""Tests for the POS tagger application."""

import pytest

from repro.apps import PosTaggerApplication, as_unit_meta
from repro.apps.postagger import CONTEXT_EXPONENT, tag_sentence
from repro.apps.tokenize import tokenize
from repro.corpus import agnes_grey_like, dubliners_like, text_400k_like
from repro.vfs import Segment


class TestTagSentence:
    def test_every_token_tagged(self):
        toks = tokenize("The station will operate near the river.")
        tags, _ = tag_sentence(toks)
        assert len(tags) == len(toks)

    def test_closed_class_lookup(self):
        tags, _ = tag_sentence(tokenize("The cat sat on the mat"))
        assert tags[0] == "DT"
        assert tags[3] == "IN"

    def test_suffix_rules(self):
        tags, _ = tag_sentence(["modernization"])
        assert tags[0] == "NN"
        tags, _ = tag_sentence(["quickly"])
        assert tags[0] == "RB"

    def test_context_rule_dt_verb_to_noun(self):
        # "the generate" -> generate retagged as NN after a determiner
        tags, _ = tag_sentence(["the", "mesmerize"])
        assert tags == ["DT", "NN"]

    def test_context_rule_modal_plus_noun_to_verb(self):
        tags, _ = tag_sentence(["will", "run"])
        assert tags[1] == "VB"

    def test_numbers_tagged_cd(self):
        tags, _ = tag_sentence(["42"])
        assert tags == ["CD"]

    def test_punct(self):
        tags, _ = tag_sentence(["."])
        assert tags == ["PUNCT"]

    def test_context_ops_superlinear(self):
        _, ops_short = tag_sentence(["word"] * 10)
        _, ops_long = tag_sentence(["word"] * 20)
        assert ops_long > 2.0 * ops_short  # superlinear in length
        assert ops_long == pytest.approx(20.0 ** CONTEXT_EXPONENT)

    def test_empty_sentence(self):
        tags, ops = tag_sentence([])
        assert tags == [] and ops == 0.0


class TestNativeRun:
    def test_counters_populated(self):
        units = list(text_400k_like(scale=1e-4))[:10]
        res = PosTaggerApplication().run_native(units)
        w = res.work
        assert w.files_opened == 10
        assert w.bytes_read == sum(u.size for u in units)
        assert w.tokens > 0 and w.sentences > 0 and w.context_ops > 0
        assert sum(res.outputs["tag_counts"].values()) == w.tokens

    def test_segment_is_one_open(self):
        cat = text_400k_like(scale=1e-4)
        seg = Segment("s", tuple(list(cat)[:4]))
        res = PosTaggerApplication().run_native([seg])
        assert res.work.files_opened == 1

    def test_deterministic(self):
        units = list(text_400k_like(scale=1e-4))[:5]
        a = PosTaggerApplication().run_native(units).work
        b = PosTaggerApplication().run_native(units).work
        assert a.tokens == b.tokens and a.context_ops == b.context_ops


class TestEstimateWork:
    def test_estimate_close_to_native(self):
        """Metadata-driven estimates must track real counters within 25 %."""
        units = list(text_400k_like(scale=2e-4))[:30]
        app = PosTaggerApplication()
        native = app.run_native(units).work
        est = app.estimate_work([as_unit_meta(u) for u in units])
        assert est.files_opened == native.files_opened
        assert est.bytes_read == native.bytes_read
        assert abs(est.tokens - native.tokens) / native.tokens < 0.25
        assert abs(est.context_ops - native.context_ops) / native.context_ops < 0.35

    def test_complexity_raises_context_ops(self):
        dub = dubliners_like().virtual_file()
        agnes = agnes_grey_like().virtual_file()
        app = PosTaggerApplication()
        w_dub = app.estimate_work([as_unit_meta(dub)])
        w_agnes = app.estimate_work([as_unit_meta(agnes)])
        # nearly equal token counts, very different context work
        assert abs(w_dub.tokens - w_agnes.tokens) / w_agnes.tokens < 0.15
        assert w_dub.context_ops > 1.4 * w_agnes.context_ops


class TestNovelsNative:
    def test_complex_novel_does_more_work_per_token(self):
        """Native §5.2 experiment: equal words, ~2x context work."""
        dub, agnes = dubliners_like(), agnes_grey_like()
        app = PosTaggerApplication()
        w_d = app.run_native([dub.unit()]).work
        w_a = app.run_native([agnes.unit()]).work
        ops_per_token_ratio = (w_d.context_ops / w_d.tokens) / (w_a.context_ops / w_a.tokens)
        assert ops_per_token_ratio > 1.4
