"""Property tests: stage-chaining volume accounting conserves bytes.

The DAG scheduler trusts that the bytes :meth:`TextWorkflow.stage_volumes`
*predicts* for a stage are exactly the bytes :func:`derived_catalogue`
*materialises* for it — through linear chains, fan-out broadcasts and
fan-in sums alike.  These properties pin that contract so predicted and
actual volumes can never drift apart (the old per-file truncation leaked
up to a byte per file and compounded per stage).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import GrepApplication, GrepCostProfile
from repro.cloud import Workload
from repro.core import WorkflowStage, derived_catalogue
from repro.dag import WorkflowGraph
from repro.perfmodel.regression import fit_affine
from repro.vfs.files import Catalogue, VirtualFile


def _predictor():
    x = np.array([1e5, 1e6, 1e7])
    return fit_affine(x, 0.1 + 1e-8 * x)


def _stage(name, ratio):
    return WorkflowStage(
        name=name,
        workload=Workload("grep", GrepApplication(), GrepCostProfile()),
        predictor=_predictor(), output_ratio=ratio)


def _catalogue(sizes):
    return Catalogue(
        [VirtualFile(path=f"f{i}.html", size=s, content_seed=i)
         for i, s in enumerate(sizes)], name="prop")


sizes_strategy = st.lists(
    st.integers(min_value=1, max_value=10**7), min_size=1, max_size=40)
ratio_strategy = st.floats(min_value=0.0, max_value=1.0,
                           allow_nan=False, allow_infinity=False)


class TestDerivedCatalogueConservation:
    @given(sizes_strategy, ratio_strategy)
    @settings(max_examples=120, deadline=4000)
    def test_total_is_exactly_the_predicted_output(self, sizes, ratio):
        src = _catalogue(sizes)
        out = derived_catalogue(src, _stage("s", ratio), seed_tag="s")
        assert out.total_size == int(src.total_size * ratio)

    @given(sizes_strategy, ratio_strategy)
    @settings(max_examples=60, deadline=4000)
    def test_no_negative_or_phantom_files(self, sizes, ratio):
        src = _catalogue(sizes)
        out = derived_catalogue(src, _stage("s", ratio), seed_tag="s")
        assert all(f.size > 0 for f in out)
        assert len(out) <= len(src)

    @given(sizes_strategy,
           st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=1,
                    max_size=4))
    @settings(max_examples=60, deadline=4000)
    def test_chained_ratios_conserve_through_every_hop(self, sizes, ratios):
        """Stage-N materialised input == stage-(N-1) materialised output,
        and both equal the workflow's stage_volumes prediction."""
        g = WorkflowGraph()
        prev = None
        for i, r in enumerate(ratios):
            g.add_stage(_stage(f"s{i}", r), after=[prev] if prev else None)
            prev = f"s{i}"
        cat = _catalogue(sizes)
        predicted = g.stage_volumes(cat.total_size)
        cur = cat
        for i, _ in enumerate(ratios):
            assert cur.total_size == predicted[f"s{i}"]
            cur = derived_catalogue(cur, g.stage(f"s{i}"), seed_tag=f"s{i}")

    @given(sizes_strategy, ratio_strategy, ratio_strategy)
    @settings(max_examples=60, deadline=4000)
    def test_fan_out_fan_in_does_not_double_count(self, sizes, ra, rb):
        """A broadcast producer feeds both branches its full output; the
        fan-in consumes exactly the sum of the branch outputs."""
        g = WorkflowGraph()
        g.add_stage(_stage("src", 1.0))
        g.add_stage(_stage("a", ra), after=["src"])
        g.add_stage(_stage("b", rb), after=["src"])
        g.add_stage(_stage("join", 1.0), after=["a", "b"])
        cat = _catalogue(sizes)
        predicted = g.stage_volumes(cat.total_size)
        src_out = derived_catalogue(cat, g.stage("src"), seed_tag="src")
        # broadcast: both branches see the same (full) producer output
        assert predicted["a"] == src_out.total_size
        assert predicted["b"] == src_out.total_size
        out_a = derived_catalogue(src_out, g.stage("a"), seed_tag="a")
        out_b = derived_catalogue(src_out, g.stage("b"), seed_tag="b")
        # fan-in: the join's input is the exact sum, no bytes made or lost
        assert predicted["join"] == out_a.total_size + out_b.total_size

    @given(sizes_strategy, ratio_strategy)
    @settings(max_examples=30, deadline=4000)
    def test_deterministic(self, sizes, ratio):
        src = _catalogue(sizes)
        a = derived_catalogue(src, _stage("s", ratio), seed_tag="s")
        b = derived_catalogue(src, _stage("s", ratio), seed_tag="s")
        assert [(f.path, f.size, f.content_seed) for f in a] == \
               [(f.path, f.size, f.content_seed) for f in b]
