"""Cross-cutting property-based tests on system invariants.

Each property encodes something the reproduction's conclusions rest on:
volume conservation through reshaping and planning, ceil-hour billing
arithmetic, model inverse consistency, engine ordering, and deterministic
cloud behaviour.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cloud.billing import billable_hours
from repro.core import StaticProvisioner, reshape
from repro.core.deadline import adjusted_deadline
from repro.perfmodel.regression import fit_affine, fit_power
from repro.sim.engine import SimulationEngine
from repro.sim.random import RngStream
from repro.vfs import Catalogue, TextStats, VirtualFile


# --- strategies --------------------------------------------------------------

sizes_strategy = st.lists(st.integers(min_value=1, max_value=200_000),
                          min_size=1, max_size=80)


def catalogue_of(sizes):
    return Catalogue([
        VirtualFile(path=f"f{i:05d}", size=s, stats=TextStats(), content_seed=i)
        for i, s in enumerate(sizes)
    ])


# --- reshaping ----------------------------------------------------------------


class TestReshapeProperties:
    @given(sizes_strategy, st.integers(min_value=1, max_value=500_000))
    @settings(max_examples=80)
    def test_volume_and_membership_conserved(self, sizes, unit):
        cat = catalogue_of(sizes)
        plan = reshape(cat, unit)
        assert plan.total_size == cat.total_size
        members = sorted(m.path for u in plan.units for m in u.members)
        assert members == sorted(f.path for f in cat)

    @given(sizes_strategy, st.integers(min_value=1, max_value=500_000))
    @settings(max_examples=80)
    def test_units_never_split_files(self, sizes, unit):
        cat = catalogue_of(sizes)
        plan = reshape(cat, unit)
        for u in plan.units:
            assert u.size <= unit or u.n_members == 1

    @given(sizes_strategy)
    @settings(max_examples=40)
    def test_reshape_reduces_or_keeps_unit_count(self, sizes):
        cat = catalogue_of(sizes)
        plan = reshape(cat, max(sizes) * 2)
        assert plan.n_units <= len(cat)


# --- billing -------------------------------------------------------------------


class TestBillingProperties:
    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    @settings(max_examples=100)
    def test_ceil_hour_bounds(self, duration):
        h = billable_hours(duration)
        assert h * 3600.0 >= duration
        if duration > 0:
            assert (h - 1) * 3600.0 < duration

    @given(st.floats(min_value=0.001, max_value=1e5),
           st.floats(min_value=0.001, max_value=1e5))
    @settings(max_examples=60)
    def test_splitting_a_run_never_cheapens_it(self, d1, d2):
        """Partial-hour pricing: one continuous run costs no more than the
        same time split across two instances."""
        assert billable_hours(d1 + d2) <= billable_hours(d1) + billable_hours(d2)


# --- regression ------------------------------------------------------------------


class TestModelProperties:
    @given(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=1e-9, max_value=1e-2),
        st.floats(min_value=1.0, max_value=1e5),
    )
    @settings(max_examples=80)
    def test_affine_inverse_roundtrip(self, a, b, probe):
        x = np.array([1e3, 1e5, 1e7])
        model = fit_affine(x, a + b * x)
        y = float(model.predict(probe))
        assume(y > model.a)
        # tolerance reflects float conditioning of (y - a) / b for tiny b
        assert model.inverse(y) == pytest.approx(probe, rel=1e-3)

    @given(
        st.floats(min_value=1e-6, max_value=10.0),
        st.floats(min_value=0.2, max_value=2.5),
    )
    @settings(max_examples=60)
    def test_power_inverse_roundtrip(self, a, b):
        x = np.array([10.0, 1e3, 1e5])
        model = fit_power(x, a * x**b)
        assert model.inverse(model.predict(777.0)) == pytest.approx(777.0, rel=1e-6)

    @given(st.floats(min_value=1.0, max_value=1e5),
           st.floats(min_value=-0.9, max_value=5.0))
    @settings(max_examples=60)
    def test_adjusted_deadline_direction(self, deadline, a):
        assume(abs(a) > 1e-9)  # a ≈ 0 degenerates to d1 == deadline
        d1 = adjusted_deadline(deadline, a)
        if a > 0:
            assert d1 <= deadline   # pessimistic residuals tighten the plan
        else:
            assert d1 >= deadline   # optimistic residuals relax it
        assert d1 == pytest.approx(deadline / (1 + a))

    @given(st.floats(min_value=10.0, max_value=1e4))
    @settings(max_examples=60)
    def test_more_instances_for_tighter_deadlines(self, deadline):
        x = np.array([1e5, 1e6, 1e7])
        model = fit_affine(x, 0.3 + 1e-4 * x)
        prov = StaticProvisioner(model)
        volume = 10**8
        assume(deadline > model.a + 1.0)
        tight = prov.instances_for(volume, deadline)
        loose = prov.instances_for(volume, deadline * 2)
        assert tight >= loose

    @given(st.integers(min_value=1, max_value=10**10),
           st.floats(min_value=10.0, max_value=1e4))
    @settings(max_examples=60)
    def test_instance_capacity_covers_volume(self, volume, deadline):
        x = np.array([1e5, 1e6, 1e7])
        model = fit_affine(x, 0.3 + 1e-4 * x)
        prov = StaticProvisioner(model)
        assume(deadline > 1.0)
        n = prov.instances_for(volume, deadline)
        x0 = math.floor(prov.volume_for(deadline))
        assert n * x0 >= volume
        assert (n - 1) * x0 < volume


# --- engine -----------------------------------------------------------------------


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e5,
                              allow_nan=False), max_size=40))
    @settings(max_examples=60)
    def test_events_fire_in_nondecreasing_time(self, times):
        eng = SimulationEngine()
        fired = []
        for t in times:
            eng.schedule_at(t, lambda t=t: fired.append(eng.now))
        eng.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e4,
                              allow_nan=False), min_size=1, max_size=30),
           st.data())
    @settings(max_examples=50)
    def test_cancellation_removes_exactly_those_events(self, times, data):
        eng = SimulationEngine()
        fired = []
        events = [eng.schedule_at(t, lambda i=i: fired.append(i))
                  for i, t in enumerate(times)]
        to_cancel = data.draw(st.sets(st.integers(min_value=0,
                                                  max_value=len(times) - 1)))
        for i in to_cancel:
            events[i].cancel()
        eng.run()
        assert set(fired) == set(range(len(times))) - to_cancel


# --- catalogue / sampling ------------------------------------------------------------


class TestCatalogueProperties:
    @given(sizes_strategy, st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=60)
    def test_sample_is_subset_without_replacement(self, sizes, seed):
        cat = catalogue_of(sizes)
        target = cat.total_size // 2
        sample = cat.sample_by_volume(target, RngStream(seed))
        paths = [f.path for f in sample]
        assert len(paths) == len(set(paths))
        assert set(paths) <= {f.path for f in cat}

    @given(sizes_strategy, st.integers(min_value=1, max_value=10))
    @settings(max_examples=60)
    def test_partition_is_ordered_cover(self, sizes, parts):
        cat = catalogue_of(sizes)
        pieces = cat.partition_volumes(parts)
        flat = [f.path for p in pieces for f in p]
        assert flat == [f.path for f in cat]


# --- cloud determinism -----------------------------------------------------------------


class TestCloudProperties:
    @given(st.integers(min_value=0, max_value=2**31),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=4000)
    def test_same_seed_same_fleet(self, seed, n):
        from repro.cloud import Cloud

        def fleet(s):
            cloud = Cloud(seed=s)
            return [(i.cpu_factor, i.io_factor, i.boot_delay)
                    for i in (cloud.launch_instance() for _ in range(n))]

        assert fleet(seed) == fleet(seed)
