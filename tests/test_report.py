"""Tests for figure containers, ASCII rendering and comparison tables."""

import pytest

from repro.report import ComparisonTable, FigureResult, Series, render_ascii


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series(label="s", x=(1, 2), y=(1.0,))

    def test_yerr_length_checked(self):
        with pytest.raises(ValueError):
            Series(label="s", x=(1,), y=(1.0,), yerr=(0.1, 0.2))


class TestFigureResult:
    def test_add_coerces_floats(self):
        fig = FigureResult("F", "title")
        fig.add("a", [1, 2], [1, 2], yerr=[0.1, 0.2])
        s = fig.series[0]
        assert s.y == (1.0, 2.0) and s.yerr == (0.1, 0.2)

    def test_notes_accumulate(self):
        fig = FigureResult("F", "t")
        fig.note("one")
        fig.note("two")
        assert fig.notes == ["one", "two"]


class TestRenderAscii:
    def test_contains_title_labels_and_bars(self):
        fig = FigureResult("FigX", "demo figure")
        fig.add("series one", ["a", "b"], [1.0, 4.0])
        fig.note("a note")
        out = render_ascii(fig)
        assert "FigX: demo figure" in out
        assert "series one" in out
        assert "note: a note" in out
        # the larger value gets the longer bar
        lines = [l for l in out.splitlines() if "#" in l]
        assert len(lines[1].split()[-1]) > len(lines[0].split()[-1])

    def test_zero_values_render(self):
        fig = FigureResult("F", "t")
        fig.add("s", [1], [0.0])
        assert "0" in render_ascii(fig)

    def test_empty_series(self):
        fig = FigureResult("F", "t")
        fig.add("s", [], [])
        assert "(empty series)" in render_ascii(fig)

    def test_yerr_shown(self):
        fig = FigureResult("F", "t")
        fig.add("s", [1], [2.0], yerr=[0.5])
        assert "±" in render_ascii(fig)


class TestComparisonTable:
    def test_rows_and_agreement(self):
        t = ComparisonTable()
        t.add("F1", "speedup", "5.6x", "5.4x", True)
        assert t.all_agree
        t.add("F2", "misses", "0", "3", False)
        assert not t.all_agree

    def test_markdown_format(self):
        t = ComparisonTable()
        t.add("F1", "q", "p", "m", True)
        md = t.markdown()
        assert md.splitlines()[0].startswith("| experiment |")
        assert "| F1 | q | p | m | yes |" in md

    def test_render_flags_disagreement(self):
        t = ComparisonTable()
        t.add("F1", "q", "p", "m", False)
        assert t.render().startswith("!! ")
