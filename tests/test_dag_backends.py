"""Tests for the pluggable data-sharing backends (S3 / EBS / local)."""

import pytest

from repro.chaos import Degradation, FaultInjector, FaultScenario
from repro.cloud import Cloud
from repro.dag import (
    DataBackend,
    EbsBackend,
    LocalDiskBackend,
    S3Backend,
    TransferRecord,
)
from repro.units import HOUR, MB


def _all_backends():
    return [S3Backend(), EbsBackend(), LocalDiskBackend()]


class TestProtocol:
    def test_all_backends_satisfy_the_protocol(self):
        for b in _all_backends():
            assert isinstance(b, DataBackend)

    def test_put_and_get_record_shapes(self):
        cloud = Cloud(seed=3)
        for b in _all_backends():
            put = b.put(cloud, "extract", 10 * MB, 120)
            get = b.get(cloud, "extract", "tag", 10 * MB, 120)
            for rec in (put, get):
                assert isinstance(rec, TransferRecord)
                assert rec.backend == b.name
                assert rec.volume == 10 * MB and rec.n_objects == 120
                assert rec.seconds >= 0.0 and rec.cost_usd >= 0.0
            assert put.kind == "put" and put.consumer is None
            assert get.kind == "get" and get.consumer == "tag"

    def test_local_disk_is_free_and_instant(self):
        cloud = Cloud(seed=3)
        b = LocalDiskBackend()
        assert b.put(cloud, "a", 10 * MB, 5).seconds == 0.0
        assert b.get(cloud, "a", "b", 10 * MB, 5).cost_usd == 0.0


class TestPricing:
    def test_s3_charges_requests_and_prorated_storage(self):
        cloud = Cloud(seed=1)
        b = S3Backend()
        put = b.put(cloud, "x", 0, 1000)
        assert put.cost_usd == pytest.approx(b.put_per_1000)
        get = b.get(cloud, "x", "y", 0, 10000)
        assert get.cost_usd == pytest.approx(b.get_per_10000)

    def test_ebs_reuses_one_volume_per_producer(self):
        cloud = Cloud(seed=1)
        b = EbsBackend()
        b.put(cloud, "x", 10 * MB, 5)
        before = len(b._volumes)
        b.get(cloud, "x", "y", 10 * MB, 5)
        b.get(cloud, "x", "z", 10 * MB, 5)
        assert len(b._volumes) == before == 1

    def test_ebs_get_pays_the_attach_penalty(self):
        cloud = Cloud(seed=1)
        b = EbsBackend()
        get = b.get(cloud, "x", "y", 1 * MB, 1)
        assert get.seconds >= b.attach_seconds


class TestDeterminism:
    def test_same_seed_same_records(self):
        def records(seed):
            cloud = Cloud(seed=seed)
            out = []
            for b in (S3Backend(), EbsBackend()):
                out.append(b.put(cloud, "extract", 10 * MB, 64))
                out.append(b.get(cloud, "extract", "tag", 10 * MB, 64))
            return out

        assert records(7) == records(7)
        assert records(7) != records(8)

    def test_named_forks_do_not_shift_existing_streams(self):
        """Installing/running a backend never perturbs other draws — the
        PR 4 convention that keeps compute identical across backends."""
        def probe(with_backend):
            cloud = Cloud(seed=5)
            if with_backend:
                b = S3Backend()
                b.put(cloud, "extract", 10 * MB, 64)
                b.get(cloud, "extract", "tag", 10 * MB, 64)
            return cloud.rng.fork("some.other.stream").uniform(0, 1)

        assert probe(False) == probe(True)

    def test_repeated_put_draws_from_the_same_fork(self):
        # A backend's draws are a pure function of (cloud seed, stream
        # name), not of call history: replaying a put gives the same time.
        cloud = Cloud(seed=5)
        b = S3Backend()
        first = b.put(cloud, "extract", 10 * MB, 64)
        again = b.put(cloud, "extract", 10 * MB, 64)
        assert first.seconds == again.seconds


class TestChaos:
    def _s3_brownout(self, seed):
        scenario = FaultScenario(
            name="brownout",
            s3_degradations=(Degradation(0.0, 4 * HOUR, factor=3.0,
                                         sigma_boost=0.5),))
        return FaultInjector([scenario], seed=seed)

    def test_s3_brownout_stretches_s3_transfers(self):
        calm = Cloud(seed=9)
        stormy = Cloud(seed=9, chaos=self._s3_brownout(9))
        b = S3Backend()
        t_calm = b.put(calm, "extract", 100 * MB, 500).seconds
        t_storm = b.put(stormy, "extract", 100 * MB, 500).seconds
        assert t_storm > t_calm

    def test_ebs_degradation_stretches_ebs_io(self):
        scenario = FaultScenario(
            name="slow-ebs",
            ebs_degradations=(Degradation(0.0, 4 * HOUR, factor=3.0,
                                          zone="*"),))
        calm = Cloud(seed=9)
        stormy = Cloud(seed=9, chaos=FaultInjector([scenario], seed=9))
        t_calm = EbsBackend().put(calm, "extract", 100 * MB, 500).seconds
        t_storm = EbsBackend().put(stormy, "extract", 100 * MB, 500).seconds
        assert t_storm > t_calm

    def test_deterministic_under_chaos(self):
        def run(seed):
            cloud = Cloud(seed=seed, chaos=self._s3_brownout(seed))
            b = S3Backend()
            return (b.put(cloud, "extract", 50 * MB, 100),
                    b.get(cloud, "extract", "tag", 50 * MB, 100))

        assert run(4) == run(4)
