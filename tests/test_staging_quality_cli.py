"""Tests for staging, quality-aware execution and the CLI."""

import numpy as np
import pytest

from repro.apps import GrepApplication, GrepCostProfile
from repro.cli import FIGURES, main as cli_main
from repro.cloud import Cloud, UploadSite, Workload
from repro.cloud.instance import HeterogeneityModel
from repro.cloud.staging import StagePlan
from repro.corpus import html_18mil_like
from repro.perfmodel import QualityTracker
from repro.runner import execute_plan, execute_quality_aware
from repro.sim.random import RngStream
from repro.units import GB, MB


class TestUploadSite:
    def test_small_fleet_below_saturation_scales(self):
        site = UploadSite(egress_bandwidth=100 * MB, per_instance_cap=20 * MB)
        t1 = site.stage_in_time(1 * GB, 1)
        t3 = site.stage_in_time(1 * GB, 3)
        assert t3 < t1

    def test_saturated_fleet_is_constant_time(self):
        """§5: 'staged … in a constant time per run (assuming that the
        bottleneck is the maximum throughput available at the upload site)'."""
        site = UploadSite(egress_bandwidth=30 * MB, per_instance_cap=20 * MB)
        t10 = site.stage_in_time(1 * GB, 10)
        t100 = site.stage_in_time(1 * GB, 100)
        assert t10 == pytest.approx(t100)

    def test_saturation_fleet(self):
        site = UploadSite(egress_bandwidth=30 * MB, per_instance_cap=20 * MB)
        assert site.saturation_fleet() == 2

    def test_zero_volume(self):
        assert UploadSite().stage_in_time(0, 5) == 0.0

    def test_noise_optional_and_deterministic(self):
        site = UploadSite()
        a = site.stage_in_time(1 * GB, 2, rng=RngStream(4))
        b = site.stage_in_time(1 * GB, 2, rng=RngStream(4))
        assert a == b
        assert a != site.stage_in_time(1 * GB, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            UploadSite(egress_bandwidth=0)
        with pytest.raises(ValueError):
            UploadSite().stage_in_time(-1, 1)
        with pytest.raises(ValueError):
            UploadSite().stage_in_time(1, 0)

    def test_stage_plan_effective_deadline(self):
        plan = StagePlan(volume=10**9, n_instances=4, stage_seconds=600.0)
        assert plan.effective_deadline(3600.0) == 3000.0
        with pytest.raises(ValueError):
            plan.effective_deadline(500.0)


class TestQualityAwareExecution:
    def seeded_tracker(self):
        """Tracker pre-trained with per-band grep throughputs."""
        t = QualityTracker()
        for v in (1e8, 5e8, 1e9):
            t.record("fast", v, v * 1.33e-8)
            t.record("ok", v, v * 1.33e-8 / 0.75)
            t.record("slow", v, v * 1.33e-8 / 0.45)
        return t

    def test_share_sizes_follow_quality(self):
        hetero = HeterogeneityModel(p_slow=0.5, p_very_slow=0.0,
                                    slow_range=(0.45, 0.6))
        cloud = Cloud(seed=21, io_heterogeneity=hetero)
        cat = html_18mil_like(scale=1e-3)
        wl = Workload("grep", GrepApplication(), GrepCostProfile())
        report, labels = execute_quality_aware(
            cloud, wl, cat, deadline=120.0, n_instances=6,
            tracker=self.seeded_tracker())
        assert len(labels) == 6
        by_label = {}
        for run, label in zip(report.runs, labels):
            by_label.setdefault(label, []).append(run.volume)
        if "fast" in by_label and "slow" in by_label:
            assert min(by_label["fast"]) > max(by_label["slow"])
        assert sum(r.volume for r in report.runs) == cat.total_size

    def test_narrows_duration_spread_vs_uniform(self):
        """On a heterogeneous fleet, quality-aware shares even out finish
        times relative to uniform shares."""
        from repro.core.planner import ProvisioningPlan
        from repro.packing import uniform_bins

        hetero = HeterogeneityModel(p_slow=0.5, p_very_slow=0.0,
                                    slow_range=(0.45, 0.6))
        cat = html_18mil_like(scale=1e-3)
        wl = Workload("grep", GrepApplication(), GrepCostProfile())
        n = 6

        by_path = {f.path: f for f in cat}
        bins = uniform_bins(cat.items(), n_bins=n, preserve_order=True)
        plan = ProvisioningPlan(
            deadline=120.0, planning_deadline=120.0, strategy="uniform",
            predictor_name="fixed",
            assignments=[[by_path[it.key] for it in b.items] for b in bins],
            predicted_times=[b.used * 1.33e-8 for b in bins],
        )
        uni_cloud = Cloud(seed=33, io_heterogeneity=hetero)
        uni = execute_plan(uni_cloud, wl, plan)

        qa_cloud = Cloud(seed=33, io_heterogeneity=hetero)
        qa, _ = execute_quality_aware(qa_cloud, wl, cat, deadline=120.0,
                                      n_instances=n, tracker=self.seeded_tracker())

        def spread(report):
            durs = [r.duration for r in report.runs]
            return (max(durs) - min(durs)) / np.mean(durs)

        assert spread(qa) < spread(uni)

    def test_validation(self):
        cloud = Cloud(seed=1)
        wl = Workload("grep", GrepApplication(), GrepCostProfile())
        with pytest.raises(ValueError):
            execute_quality_aware(cloud, wl, html_18mil_like(scale=1e-4),
                                  deadline=10.0, n_instances=0,
                                  tracker=self.seeded_tracker())


class TestCli:
    def test_figures_registry_complete(self):
        for fid in ("F1a", "F1b", "F2", "F3", "F4", "F5", "F6", "F7", "F8",
                    "F9", "X1", "X2", "X3", "X4", "X5", "X6", "X7"):
            assert fid in FIGURES

    def test_cheap_figures_render(self, capsys):
        rc = cli_main(["figures", "--ids", "F1b", "F2", "X2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Fig2" in out and "Switching" in out

    def test_unknown_figure_id(self, capsys):
        assert cli_main(["figures", "--ids", "NOPE"]) == 2

    def test_no_ids(self):
        assert cli_main(["figures"]) == 2

    def test_datasets_command(self, capsys):
        assert cli_main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "html_18mil" in out and "text_400k" in out
