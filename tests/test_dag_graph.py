"""Tests for WorkflowGraph: DAG topology and edge-volume accounting."""

import pytest

from repro.core import WorkflowError
from repro.dag import WorkflowGraph, fanout_pipeline, linear_pipeline


class TestTopology:
    def test_linear_shape(self):
        g = linear_pipeline()
        assert [s.name for s in g.stages()] == [
            "filter", "extract", "tokenize", "tag", "aggregate"]
        assert g.roots() == ["filter"]
        assert g.sinks() == ["aggregate"]
        assert g.successors("tokenize") == ["tag"]
        assert len(g.edges()) == 4

    def test_fanout_shape(self):
        g = fanout_pipeline()
        assert g.successors("extract") == ["tag", "tokenize"]
        assert g.predecessors("aggregate") == ["tag", "tokenize"]
        assert g.roots() == ["filter"]
        assert g.sinks() == ["aggregate"]
        assert ("extract", "tag") in g.edges()
        assert ("extract", "tokenize") in g.edges()

    def test_unknown_stage_raises(self):
        with pytest.raises(WorkflowError):
            linear_pipeline().successors("nope")

    def test_empty_graph(self):
        g = WorkflowGraph()
        assert g.roots() == [] and g.sinks() == [] and g.edges() == []


class TestVolumes:
    def test_output_volumes_follow_ratios(self):
        g = linear_pipeline(keep=0.5)
        vin = 1_000_000
        outs = g.output_volumes(vin)
        vols = g.stage_volumes(vin)
        for s in g.stages():
            assert outs[s.name] == int(s.output_ratio * vols[s.name])

    def test_edge_volume_is_broadcast_producer_output(self):
        g = fanout_pipeline()
        vin = 2_000_000
        outs = g.output_volumes(vin)
        edges = g.edge_volumes(vin)
        # Fan-out: both consumers see the producer's FULL output (one
        # stored copy read twice), not a split of it.
        assert edges[("extract", "tokenize")] == outs["extract"]
        assert edges[("extract", "tag")] == outs["extract"]

    def test_fan_in_consumes_sum_of_producers(self):
        g = fanout_pipeline()
        vin = 2_000_000
        outs = g.output_volumes(vin)
        vols = g.stage_volumes(vin)
        assert vols["aggregate"] == outs["tokenize"] + outs["tag"]
