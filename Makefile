# Convenience targets for the reproduction.

PY ?= python

.PHONY: test bench bench-json perf-gate experiments reproduce examples figures clean

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# Append a labelled median snapshot of the kernel benches to
# BENCH_packing.json (the committed perf trajectory).
LABEL ?= local
bench-json:
	PYTHONPATH=src $(PY) scripts/bench_packing_trajectory.py --run --label "$(LABEL)"

# Re-measure the tracked perf headlines and gate them against the newest
# committed BENCH_packing.json entry (REPRO_GATE_THRESHOLD to widen).
perf-gate:
	PYTHONPATH=src $(PY) scripts/bench_packing_trajectory.py --check

experiments:
	$(PY) scripts/generate_experiments_md.py

reproduce:
	$(PY) scripts/reproduce_all.py

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PY) $$ex || exit 1; done

figures:
	$(PY) -m repro.cli figures --all

clean:
	rm -rf .pytest_cache .benchmarks .repro src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
